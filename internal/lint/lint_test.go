package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixtures are the known-bad packages under testdata/src; each is
// type-checked under a virtual import path so path-conditional rules
// (determinism's package list, cancelcheck's internal/exec condition)
// fire without the fixtures living in the real tree.
var fixtures = []struct {
	name        string
	virtualPath string
	// rule overrides the rule name TestFixturesAreDetected expects at
	// least one finding of; empty means the fixture name is the rule.
	rule string
}{
	{name: "determinism", virtualPath: "tpcds/internal/datagen"},
	{name: "cancelcheck", virtualPath: "tpcds/internal/exec"},
	{name: "errcheck", virtualPath: "tpcds/internal/errfix"},
	{name: "panics", virtualPath: "tpcds/internal/panicfix"},
	{name: "strayio", virtualPath: "tpcds/internal/strayfix"},
	{name: "directive", virtualPath: "tpcds/internal/dirfix"},
	{name: "lockcheck", virtualPath: "tpcds/internal/lockfix"},
	{name: "goleak", virtualPath: "tpcds/internal/goleakfix"},
	{name: "ctxflow", virtualPath: "tpcds/internal/ctxfix"},
	// taintdet poses as a generator package on purpose: the golden
	// shows the syntactic determinism findings and the flow-sensitive
	// taint findings layering over the same file.
	{name: "taintdet", virtualPath: "tpcds/internal/datagen"},
	// obssanction exercises the observability carve-out: clock values
	// flowing only into obs are clean, values reaching both obs and
	// storage (or read back out of obs) are flagged by determinism and
	// taintdet.
	{name: "obssanction", virtualPath: "tpcds/internal/datagen", rule: "determinism"},
	// sharecap poses as internal/exec and declares its own
	// forEachMorsel/parallelFor stubs so the worker-pool sites match.
	{name: "sharecap", virtualPath: "tpcds/internal/exec"},
	{name: "pubfreeze", virtualPath: "tpcds/internal/pubfix"},
	// taintinter is the interprocedural taintdet fixture: clock values
	// crossing function boundaries (including a mutually recursive SCC)
	// before reaching storage emission.
	{name: "taintinter", virtualPath: "tpcds/internal/datagen", rule: "taintdet"},
	// The value tier: boundscheck poses as internal/exec/batch.go (the
	// rule is file-scoped inside exec), nilcheck as internal/storage,
	// errcontract as internal/plan. Each fixture pairs known-bad shapes
	// with clean ones that must stay silent.
	{name: "boundscheck", virtualPath: "tpcds/internal/exec"},
	{name: "nilcheck", virtualPath: "tpcds/internal/storage"},
	{name: "errcontract", virtualPath: "tpcds/internal/plan"},
}

// TestFixtureGoldens runs the analyzers over each known-bad fixture and
// compares the rendered diagnostics (plus the suppression count) against
// testdata/<name>.golden. Regenerate with: go test ./internal/lint -run
// Golden -update
func TestFixtureGoldens(t *testing.T) {
	loader, _, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", fx.name))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDir(dir, fx.virtualPath)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			res := Check([]*Package{pkg})
			var sb strings.Builder
			for _, d := range res.Diagnostics {
				fmt.Fprintln(&sb, d)
			}
			fmt.Fprintf(&sb, "suppressed: %d\n", res.Suppressed)
			got := sb.String()

			golden := filepath.Join("testdata", fx.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixturesAreDetected guards against an analyzer silently going
// dead: every fixture except the directive one must produce at least
// one finding of its own rule.
func TestFixturesAreDetected(t *testing.T) {
	loader, _, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", fx.name))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir, fx.virtualPath)
		if err != nil {
			t.Fatalf("%s: loading fixture: %v", fx.name, err)
		}
		rule := fx.rule
		if rule == "" {
			rule = fx.name
		}
		res := Check([]*Package{pkg})
		found := false
		for _, d := range res.Diagnostics {
			if d.Rule == rule {
				found = true
			}
		}
		if !found {
			t.Errorf("fixture %s produced no %q findings: %v", fx.name, rule, res.Diagnostics)
		}
	}
}

// TestLiveTreeClean asserts the real module passes its own gate — the
// same invariant CI enforces by running cmd/dslint. Skipped in -short
// mode: type-checking the whole module from source takes seconds.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type check is slow; the dslint CI job covers it")
	}
	_, pkgs, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	res := Check(pkgs)
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	if !res.Clean() {
		t.Errorf("live tree has %d findings; fix them or add //lint:ignore with a reason", len(res.Diagnostics))
	}
}
