package lint

// callgraph.go builds the module-wide call graph the interprocedural
// tier (summary.go, sharecap.go, pubfreeze.go, the interprocedural half
// of taintdet) runs on. The graph is computed over the same pure-stdlib
// load as everything else: nodes are the function and method
// declarations of the analyzed packages, edges are the statically
// resolvable calls between them.
//
// Resolution, in decreasing order of precision:
//
//   - direct calls (pkg.F(), F()) resolve through go/types Uses to the
//     callee's declaration;
//   - method calls (x.M()) resolve through the method-set object the
//     type checker recorded for the selector — for a concrete receiver
//     this is the declared method, so the edge is exact;
//   - interface method calls resolve to the *interface* method object,
//     which matches no declaration: the call is recorded as an unknown
//     callee (CallsUnknown), and every summary consulting it degrades
//     conservatively;
//   - calls through function values (variables, fields, parameters) are
//     unknown callees too. sharecap partially recovers these: a
//     function-typed capture whose initializer is a visible literal is
//     re-checked at its creation site (see sharecap.go).
//
// Function literals do NOT get their own nodes. A literal's effects are
// attributed to the enclosing declaration (its body is walked as part of
// the declaration's summary), which is conservative in the may-analysis
// direction: whatever a closure might do when invoked is charged to its
// creator. The flow-sensitive per-literal analyses (taintdet, sharecap)
// still examine literal bodies as separate scopes.
//
// Node and edge order is deterministic — nodes sort by position, edges
// by first call site — so two runs over the same tree produce
// byte-identical summaries and findings (the CI determinism check pins
// this).

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one declared function or method in the call graph.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Name is the display form: "pkg.Func" or "pkg.(T).Method".
	Name string

	// Calls lists the statically resolved in-graph callees, deduplicated,
	// in first-call-site order.
	Calls []*FuncNode

	// CallsUnknown records that the body contains at least one call the
	// graph cannot resolve (interface method, function value, or a
	// function outside the analyzed package set, stdlib included).
	CallsUnknown bool

	sum *Summary
}

// Program is the interprocedural view over one set of packages: the
// call graph plus the per-function summaries computed bottom-up over
// it. Built once per Check run by buildProgram.
type Program struct {
	Pkgs  []*Package
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
}

// buildProgram constructs the call graph over pkgs and computes
// summaries bottom-up. store, when non-nil, short-circuits summary
// computation for packages whose content hash matches a stored entry.
func buildProgram(pkgs []*Package, store *SummaryStore) *Program {
	pr := &Program{Pkgs: pkgs, byObj: map[*types.Func]*FuncNode{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Pkg: p, Decl: fd, Obj: obj, Name: funcDisplayName(p, fd)}
				pr.byObj[obj] = n
				pr.Nodes = append(pr.Nodes, n)
			}
		}
	}
	// Position order is load order is import-path order: deterministic.
	sort.Slice(pr.Nodes, func(i, j int) bool {
		a, b := pr.Nodes[i], pr.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	for _, n := range pr.Nodes {
		pr.resolveCalls(n)
	}
	pr.computeSummaries(store)
	return pr
}

// funcDisplayName renders "pkg.Func" or "pkg.(T).Method".
func funcDisplayName(p *Package, fd *ast.FuncDecl) string {
	name := p.Name + "." + fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = p.Name + ".(" + id.Name + ")." + fd.Name.Name
		}
	}
	return name
}

// resolveCalls fills n.Calls with every statically resolvable callee in
// n's body, including calls made inside its function literals (a
// literal's calls are its creator's: see the file comment).
func (pr *Program) resolveCalls(n *FuncNode) {
	seen := map[*FuncNode]bool{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pr.calleeNode(n.Pkg, call)
		if callee == nil {
			if !pr.knownLeafCall(n.Pkg, call) {
				n.CallsUnknown = true
			}
			return true
		}
		if !seen[callee] {
			seen[callee] = true
			n.Calls = append(n.Calls, callee)
		}
		return true
	})
}

// calleeNode resolves a call expression to its in-graph callee, nil if
// the callee is unknown or outside the analyzed set.
func (pr *Program) calleeNode(p *Package, call *ast.CallExpr) *FuncNode {
	if f := p.calleeFunc(call); f != nil {
		return pr.byObj[f]
	}
	return nil
}

// calleeFunc resolves a call to the *types.Func it invokes, when the
// callee is a statically known function or concrete method. Type
// conversions, builtins, function values and interface methods return
// nil (interface methods resolve to an object whose declaration the
// graph does not hold, so lookup fails the same way).
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// knownLeafCall reports whether an unresolved call is one the summary
// layer fully understands anyway, so it should not poison the caller
// with CallsUnknown: builtins and type conversions.
func (pr *Program) knownLeafCall(p *Package, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch p.Info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := p.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.FuncType, *ast.InterfaceType, *ast.StarExpr:
		return true // conversion to a composite type
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// NodeByObj returns the graph node declaring f, nil if f is not part of
// the analyzed set.
func (pr *Program) NodeByObj(f *types.Func) *FuncNode {
	if f == nil {
		return nil
	}
	return pr.byObj[f]
}

// BuildProgram exposes the interprocedural view for tooling — the
// cmd/dslint -summary flag and the tests. store may be nil.
func BuildProgram(pkgs []*Package, store *SummaryStore) *Program {
	return buildProgram(pkgs, store)
}

// FindNode resolves a function by display name: an exact match on
// "pkg.Func" / "pkg.(T).Method", or a unique suffix of it ("costPlan",
// "(Engine).costPlan"). Ambiguous or unknown names return nil and the
// candidate list.
func (pr *Program) FindNode(name string) (*FuncNode, []string) {
	var matches []*FuncNode
	for _, n := range pr.Nodes {
		if n.Name == name {
			return n, nil
		}
		if strings.HasSuffix(n.Name, name) {
			matches = append(matches, n)
		}
	}
	if len(matches) == 1 {
		return matches[0], nil
	}
	var names []string
	for _, n := range matches {
		names = append(names, n.Name)
	}
	return nil, names
}

// sccs partitions the call graph into strongly connected components in
// reverse topological order: every component appears after the
// components it calls into, which is exactly the bottom-up order the
// summary fixpoint wants. Iterative Tarjan (the recursion depth of a
// DFS over a deep call chain is unbounded).
func (pr *Program) sccs() [][]*FuncNode {
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var out [][]*FuncNode
	next := 0

	type frame struct {
		n  *FuncNode
		ci int // next callee index to visit
	}
	for _, root := range pr.Nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			if fr.ci < len(fr.n.Calls) {
				c := fr.n.Calls[fr.ci]
				fr.ci++
				if _, seen := index[c]; !seen {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					work = append(work, frame{n: c})
				} else if onStack[c] && index[c] < low[fr.n] {
					low[fr.n] = index[c]
				}
				continue
			}
			n := fr.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []*FuncNode
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				// Deterministic member order within the component.
				sort.Slice(comp, func(i, j int) bool {
					a, b := comp[i], comp[j]
					if a.Pkg.Path != b.Pkg.Path {
						return a.Pkg.Path < b.Pkg.Path
					}
					return a.Decl.Pos() < b.Decl.Pos()
				})
				out = append(out, comp)
			}
		}
	}
	return out
}
