package lint

// pubfreeze checks the publication-freeze contract: a value inserted
// into a shared cache — the plan cache, the stats cache, a sync.Map, or
// any map stored into under a held lock — is visible to other
// goroutines the moment the publishing call returns, so the publisher
// must not modify it afterwards. The lock that protected the insert
// does not help: readers get the value out and use it unlocked.
//
// Publish sites recognized:
//
//   - x.Put(key, v, ...) where x's named type ends in "Cache";
//   - sync.Map Store / LoadOrStore;
//   - any method named Publish;
//   - m[k] = v with a mutex provably held (the lock-guarded map idiom
//     the stats cache uses).
//
// Only values that can alias are tracked: a published struct copy with
// no pointer-like component (all-scalar stats entries) cannot be
// changed retroactively, so writes to the local afterwards are fine.
// For a published VALUE with pointer-like components, only writes that
// reach shared memory — through a pointer, slice or map in the access
// path — are flagged; overwriting the local variable itself re-binds it
// and ends tracking (strong update).
//
// Mutation through calls is summary-driven: passing a published value
// to a function whose summary mutates that parameter (synchronized or
// not — the contract is "unmodified", not "data-race-free") is flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pubInfo records one published object.
type pubInfo struct {
	name string // source spelling, for the message
	sink string // where it was published, for the message
}

// pubState is the dataflow fact: held locks (intersection-joined) plus
// the published set (union-joined).
type pubState struct {
	locks lockSet
	pub   map[types.Object]pubInfo
}

func newPubState() pubState {
	return pubState{locks: lockSet{}, pub: map[types.Object]pubInfo{}}
}

func clonePubState(s pubState) pubState {
	c := pubState{locks: cloneLockSet(s.locks), pub: make(map[types.Object]pubInfo, len(s.pub))}
	for k, v := range s.pub {
		c.pub[k] = v
	}
	return c
}

func joinPubStates(dst, src pubState) bool {
	changed := joinLockSets(dst.locks, src.locks)
	for k, v := range src.pub {
		if _, ok := dst.pub[k]; !ok {
			dst.pub[k] = v
			changed = true
		}
	}
	return changed
}

func analyzePubFreeze(pr *Program, p *Package) []Diagnostic {
	if pr == nil {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, fs := range funcScopes(f) {
			pf := &pubCheck{pr: pr, p: p, reported: map[token.Pos]bool{}}
			out = append(out, pf.checkScope(fs)...)
		}
	}
	return out
}

type pubCheck struct {
	pr *Program
	p  *Package

	diags    []Diagnostic
	reported map[token.Pos]bool
}

func (pf *pubCheck) checkScope(fs funcScope) []Diagnostic {
	// Cheap pre-pass: no publish site, nothing to track.
	found := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && pf.publishCall(call) != "" {
			found = true
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ie, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if t := pf.p.typeOf(ie.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	if !found {
		return nil
	}
	g := buildCFG(fs.body, pf.p.terminatesStmt)
	solveForward(g, newPubState(), newPubState, clonePubState, joinPubStates,
		func(blk *Block, in pubState) pubState {
			st := clonePubState(in)
			for _, node := range blk.Nodes {
				pf.p.lockEffects(node, st.locks)
				pf.transferNode(node, st)
			}
			return st
		})
	return pf.diags
}

// publishCall classifies a call as a publish site, returning the sink
// description ("" when it is not one).
func (pf *pubCheck) publishCall(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := pf.p.Info.Selections[sel]
	if s == nil {
		return ""
	}
	named := namedOf(s.Recv())
	if named == nil {
		return ""
	}
	rname := named.Obj().Name()
	switch sel.Sel.Name {
	case "Put":
		if strings.HasSuffix(rname, "Cache") {
			return displayExpr(sel.X)
		}
	case "Store", "LoadOrStore":
		if rname == "Map" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
			return displayExpr(sel.X)
		}
	case "Publish":
		return displayExpr(sel.X)
	}
	return ""
}

// transferNode checks mutations against the pre-state, then records new
// publications.
func (pf *pubCheck) transferNode(node ast.Node, st pubState) {
	// Mutations of already-published values.
	inspectShallow(node, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				pf.checkWrite(lhs, v.Tok, st)
			}
		case *ast.IncDecStmt:
			pf.checkWrite(v.X, token.ASSIGN, st)
		case *ast.CallExpr:
			pf.checkCallMutation(v, st)
		}
		return true
	})
	// New publications.
	inspectShallow(node, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.CallExpr:
			if sink := pf.publishCall(v); sink != "" {
				args := v.Args
				if len(args) > 1 {
					args = args[1:] // first arg is the key
				}
				for _, arg := range args {
					pf.publish(arg, sink, st)
				}
			}
		case *ast.AssignStmt:
			// m[k] = v with a lock held: the lock-guarded shared-map idiom.
			if len(st.locks) == 0 {
				return true
			}
			for i, lhs := range v.Lhs {
				ie, ok := unparen(lhs).(*ast.IndexExpr)
				if !ok || i >= len(v.Rhs) {
					continue
				}
				t := pf.p.typeOf(ie.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pf.publish(v.Rhs[i], displayExpr(ie.X), st)
				}
			}
		}
		return true
	})
}

// publish starts tracking arg when it is a plain identifier whose type
// can alias shared memory.
func (pf *pubCheck) publish(arg ast.Expr, sink string, st pubState) {
	id, ok := unparen(arg).(*ast.Ident)
	if !ok {
		return
	}
	obj := objOf(pf.p, id)
	if obj == nil || !canAlias(obj.Type()) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	st.pub[obj] = pubInfo{name: id.Name, sink: sink}
}

// canAlias reports whether a value of type t shares mutable state with
// copies of itself: pointer-like itself, or a struct/array with a
// pointer-like component.
func canAlias(t types.Type) bool {
	return canAliasDepth(t, 0)
}

func canAliasDepth(t types.Type, depth int) bool {
	if t == nil || depth > 6 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if canAliasDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return canAliasDepth(u.Elem(), depth+1)
	}
	return false
}

// checkWrite flags a store that reaches a published value's shared
// memory; a plain re-bind ends tracking instead.
func (pf *pubCheck) checkWrite(lhs ast.Expr, tok token.Token, st pubState) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := objOf(pf.p, root)
	if obj == nil {
		return
	}
	info, published := st.pub[obj]
	if !published {
		return
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok && id == root {
		// Re-binding the variable: the published value is unreachable from
		// it now.
		if tok == token.ASSIGN || tok == token.DEFINE {
			delete(st.pub, obj)
		}
		return
	}
	// Pointer-typed published values share everything; value-typed ones
	// only share through pointer-like components in the path.
	if pointerLike(obj.Type()) || pathThroughAlias(pf.p, lhs, root) {
		pf.report(lhs, "%q is modified after publication to %s; published entries must be deep-immutable", info.name, info.sink)
	}
}

// pathThroughAlias reports whether the access path from root to the
// full lhs passes through a pointer, slice or map — i.e. the write
// lands in memory the published copy shares.
func pathThroughAlias(p *Package, lhs ast.Expr, root *ast.Ident) bool {
	for {
		e := unparen(lhs)
		if e == ast.Expr(root) {
			return false
		}
		switch v := e.(type) {
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			if t := p.typeOf(v.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return true
				}
			}
			lhs = v.X
		case *ast.IndexExpr:
			if t := p.typeOf(v.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					return true
				}
			}
			lhs = v.X
		default:
			return false
		}
	}
}

// checkCallMutation flags a published value passed where the callee's
// summary (or the modeled external effect) mutates it. Synchronized
// mutation counts too: the contract is "unmodified after publication".
func (pf *pubCheck) checkCallMutation(call *ast.CallExpr, st pubState) {
	p := pf.p
	lookup := func(e ast.Expr) (types.Object, pubInfo, bool) {
		root := rootIdent(e)
		if root == nil {
			return nil, pubInfo{}, false
		}
		obj := objOf(p, root)
		if obj == nil {
			return nil, pubInfo{}, false
		}
		info, ok := st.pub[obj]
		return obj, info, ok
	}
	if callee := pf.pr.calleeNode(p, call); callee != nil {
		cs := pf.pr.summaryOf(callee)
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.Info.Selections[sel] != nil {
			if cs.MutatesRecv || cs.MutatesRecvSync {
				if _, info, ok := lookup(sel.X); ok {
					pf.report(sel.X, "%q is mutated via %s after publication to %s; published entries must be deep-immutable", info.name, callee.Name, info.sink)
				}
			}
		}
		nparams := calleeParamCount(callee)
		for i, arg := range call.Args {
			j := i
			if nparams > 0 && j >= nparams {
				j = nparams - 1
			}
			if j >= 32 || (cs.MutatesParam&(1<<j) == 0 && cs.MutatesParamSync&(1<<j) == 0) {
				continue
			}
			if _, info, ok := lookup(arg); ok {
				pf.report(arg, "%q is mutated via %s after publication to %s; published entries must be deep-immutable", info.name, callee.Name, info.sink)
			}
		}
		return
	}
	eff := p.externalCallEffect(call)
	if eff.known {
		if eff.mutRecv {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if _, info, ok := lookup(sel.X); ok {
					name, _ := calleeIdentName(call.Fun)
					pf.report(sel.X, "%q is mutated via %s after publication to %s; published entries must be deep-immutable", info.name, name, info.sink)
				}
			}
		}
		for _, i := range eff.mutArgs {
			if i < len(call.Args) {
				if _, info, ok := lookup(call.Args[i]); ok {
					name, _ := calleeIdentName(call.Fun)
					pf.report(call.Args[i], "%q is mutated via %s after publication to %s; published entries must be deep-immutable", info.name, name, info.sink)
				}
			}
		}
		return
	}
	// Unmodeled call: pointer-like published arguments may be mutated.
	for _, arg := range call.Args {
		if !pointerLike(p.typeOf(arg)) {
			continue
		}
		if _, info, ok := lookup(arg); ok {
			name, _ := calleeIdentName(call.Fun)
			pf.report(arg, "%q may be mutated by %s after publication to %s; published entries must be deep-immutable", info.name, name, info.sink)
		}
	}
}

func (pf *pubCheck) report(n ast.Node, format string, args ...any) {
	if pf.reported[n.Pos()] {
		return
	}
	pf.reported[n.Pos()] = true
	pf.diags = append(pf.diags, pf.p.diag(n, "pubfreeze", format, args...))
}
