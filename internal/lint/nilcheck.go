package lint

// nilcheck.go flags the definite-nil value bugs the nilness lattice can
// prove: dereferencing a pointer known nil on this path (star deref or
// field access through a nil pointer) and writing to a map known nil.
// "Known nil" means every path reaching the use leaves the value nil —
// zero-value declarations, explicit nil assignments, or the nil arm of
// an `if x != nil` branch. May-be-nil results of (T, error) calls are
// errcontract's business (use-before-error-check), not nilcheck's, so
// no finding is ever double-reported between the two rules.
//
// Scope: internal/exec, internal/plan, internal/storage, internal/obs —
// the packages whose error/early-return paths run rarely enough that a
// latent nil deref survives the test suite.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzeNilCheck is the nilcheck analyzer entry.
func analyzeNilCheck(pr *Program, p *Package) []Diagnostic {
	return valueAnalyze(pr, p).diags["nilcheck"]
}

// checkNilDeref flags *x when x is nil on every path here.
func (va *valueAnalysis) checkNilDeref(env *valEnv, v *ast.StarExpr) {
	t := va.p.typeOf(v.X)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return
	}
	key := va.p.canonKey(v.X)
	if key == "" || env.nl[key] != nlNil {
		return
	}
	why := fmt.Sprintf("%s is nil on every path reaching this dereference", keyDisplay(key))
	va.emit(v, "nilcheck", why, "dereference of nil pointer %s", displayExpr(v.X))
}

// checkNilField flags x.f (a field access, which dereferences) when x
// is a pointer known nil. Method calls are exempt: methods may accept
// nil receivers by design.
func (va *valueAnalysis) checkNilField(env *valEnv, v *ast.SelectorExpr) {
	sel := va.p.Info.Selections[v]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	t := va.p.typeOf(v.X)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return
	}
	key := va.p.canonKey(v.X)
	if key == "" || env.nl[key] != nlNil {
		return
	}
	why := fmt.Sprintf("%s is nil on every path reaching this field access", keyDisplay(key))
	va.emit(v, "nilcheck", why, "field access through nil pointer %s", displayExpr(v.X))
}

// checkNilMapWrite flags m[k] = v when m is nil on every path here (a
// nil map read is defined; the write panics).
func (va *valueAnalysis) checkNilMapWrite(env *valEnv, v *ast.IndexExpr) {
	key := va.p.canonKey(v.X)
	if key == "" || env.nl[key] != nlNil {
		return
	}
	why := fmt.Sprintf("%s is nil on every path reaching this write (declared without make?)", keyDisplay(key))
	va.emit(v, "nilcheck", why, "write to nil map %s", displayExpr(v.X))
}
