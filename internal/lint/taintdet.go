package lint

// taintdet is the dataflow upgrade of the determinism rule. The
// syntactic rule (analyzers.go) bans calling time.Now in a generator
// package; it cannot see `t := time.Now(); ...; row = append(row,
// storage.Int(t.Unix()))` when the call and the emission are separated
// by assignments. taintdet closes that hole with a forward taint
// analysis over the function CFG:
//
//   - sources: wall-clock reads (time.Now/Since/Until), the global
//     math/rand and math/rand/v2, crypto/rand, and process-environment
//     reads (os.Getenv/Environ/Getpid/Getppid/Hostname) — anything
//     whose value differs between two runs of the same seed;
//   - propagation: assignment, compound assignment, range binding and
//     field stores move taint between locals (strong updates on plain
//     reassignment, so laundering through a variable is tracked but an
//     overwrite genuinely clears);
//   - sinks: any call into internal/storage with a tainted argument
//     (flat-file emission and table building both live there) and any
//     tainted value returned by an exported function (generator
//     results escape to the harness and become benchmark data).
//
// Scope: the deterministic generator packages plus internal/exec
// (query results) and internal/storage itself (the emission layer) —
// in storage there is no syntactic ban, so taintdet is the only thing
// standing between a wall-clock read and the flat files.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taintScopePkgs are the packages whose emitted values must be
// bit-deterministic. The deterministic generator set is shared with the
// syntactic rule.
var taintScopeExtra = map[string]bool{
	"tpcds/internal/exec":    true,
	"tpcds/internal/storage": true,
}

// storagePkgPath is the emission layer every generator writes through.
const storagePkgPath = "tpcds/internal/storage"

// taintFacts maps tainted local objects to the source description that
// tainted them ("time.Now") and the source position.
type taintFacts map[types.Object]taintOrigin

type taintOrigin struct {
	src string
	pos token.Pos
}

func newTaintFacts() taintFacts { return taintFacts{} }

func joinTaintFacts(dst, src taintFacts) bool {
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

func cloneTaintFacts(s taintFacts) taintFacts {
	c := make(taintFacts, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func analyzeTaintDet(pr *Program, p *Package) []Diagnostic {
	if !deterministicPkgs[p.Path] && !taintScopeExtra[p.Path] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, fs := range funcScopes(f) {
			out = append(out, p.taintFunc(pr, fs)...)
		}
	}
	return out
}

func (p *Package) taintFunc(pr *Program, fs funcScope) []Diagnostic {
	// Cheap pre-pass: a function that neither calls a source directly
	// nor calls a helper whose summary says it returns tainted values
	// cannot taint anything (closures inherit no taint — see the scope
	// note below).
	hasSource := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := p.taintSourceInter(pr, call); ok {
				hasSource = true
			}
		}
		return !hasSource
	})
	if !hasSource {
		return nil
	}

	exported := fs.decl != nil && fs.decl.Name.IsExported()
	funcName := fs.name

	var diags []Diagnostic
	reported := map[token.Pos]bool{}
	report := func(n ast.Node, format string, args ...any) {
		if reported[n.Pos()] {
			return
		}
		reported[n.Pos()] = true
		diags = append(diags, p.diag(n, "taintdet", format, args...))
	}

	g := buildCFG(fs.body, p.terminatesStmt)
	transfer := func(blk *Block, in taintFacts) taintFacts {
		st := cloneTaintFacts(in)
		for _, node := range blk.Nodes {
			p.taintTransferNode(pr, node, st, exported, funcName, report)
		}
		return st
	}
	solveForward(g, newTaintFacts(), newTaintFacts, cloneTaintFacts, joinTaintFacts, transfer)
	return diags
}

// taintTransferNode interprets one CFG node: sinks first (the node's
// reads see the pre-state), then assignments update the state.
func (p *Package) taintTransferNode(pr *Program, node ast.Node, st taintFacts, exported bool, funcName string, report func(n ast.Node, format string, args ...any)) {
	// Sinks anywhere inside the node: direct storage calls, and calls to
	// in-module helpers whose summary proves the argument flows on into
	// storage emission (the interprocedural half).
	inspectShallow(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == storagePkgPath {
				for _, arg := range call.Args {
					if origin, tainted := p.exprTaint(pr, arg, st); tainted {
						report(arg, "value derived from %s reaches storage emission via %s; generator output must be bit-deterministic",
							origin.src, displayExpr(call.Fun))
					}
				}
				return true
			}
		}
		if pr == nil {
			return true
		}
		callee := pr.calleeNode(p, call)
		if callee == nil {
			return true
		}
		cs := pr.summaryOf(callee)
		if cs.ParamToSink == 0 && !cs.RecvToSink {
			return true
		}
		if cs.RecvToSink {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.Info.Selections[sel] != nil {
				if origin, tainted := p.exprTaint(pr, sel.X, st); tainted {
					report(sel.X, "value derived from %s reaches storage emission via %s; generator output must be bit-deterministic",
						origin.src, callee.Name)
				}
			}
		}
		nparams := calleeParamCount(callee)
		for i, arg := range call.Args {
			j := i
			if nparams > 0 && j >= nparams {
				j = nparams - 1
			}
			if j >= 32 || cs.ParamToSink&(1<<j) == 0 {
				continue
			}
			if origin, tainted := p.exprTaint(pr, arg, st); tainted {
				report(arg, "value derived from %s reaches storage emission via %s; generator output must be bit-deterministic",
					origin.src, callee.Name)
			}
		}
		return true
	})

	switch v := node.(type) {
	case *ast.ReturnStmt:
		if exported {
			for _, res := range v.Results {
				if origin, tainted := p.exprTaint(pr, res, st); tainted {
					report(res, "exported %s returns a value derived from %s; benchmark data must be bit-deterministic",
						funcName, origin.src)
				}
			}
		}
	case *ast.AssignStmt:
		p.taintAssign(pr, v, st)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if rhs == nil {
						continue
					}
					if origin, tainted := p.exprTaint(pr, rhs, st); tainted {
						if obj := p.Info.Defs[name]; obj != nil {
							st[obj] = origin
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		if origin, tainted := p.exprTaint(pr, v.X, st); tainted {
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if e == nil {
					continue
				}
				if id, ok := unparen(e).(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						st[obj] = origin
					} else if obj := p.Info.Uses[id]; obj != nil {
						st[obj] = origin
					}
				}
			}
		}
	}
}

// taintAssign propagates taint through one assignment, with strong
// updates: reassigning a clean value to a plain identifier clears it.
func (p *Package) taintAssign(pr *Program, as *ast.AssignStmt, st taintFacts) {
	assignOne := func(lhs ast.Expr, origin taintOrigin, tainted bool) {
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				return
			}
			obj := p.Info.Defs[l]
			if obj == nil {
				obj = p.Info.Uses[l]
			}
			if obj == nil {
				return
			}
			if tainted {
				st[obj] = origin
			} else if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
				delete(st, obj) // strong update
			}
		default:
			// x.f = v, x[i] = v: taint the root variable (weak update —
			// part of the aggregate is nondeterministic).
			if !tainted {
				return
			}
			root := rootIdent(lhs)
			if root == nil {
				return
			}
			if obj := p.Info.Uses[root]; obj != nil {
				st[obj] = origin
			}
		}
	}
	// Compound assignment (+=, etc.): LHS taint persists, RHS may add.
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		for i, lhs := range as.Lhs {
			if i < len(as.Rhs) {
				if origin, tainted := p.exprTaint(pr, as.Rhs[i], st); tainted {
					assignOne(lhs, origin, true)
				}
			}
		}
		return
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		origin, tainted := p.exprTaint(pr, as.Rhs[0], st)
		for _, lhs := range as.Lhs {
			assignOne(lhs, origin, tainted)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		origin, tainted := p.exprTaint(pr, as.Rhs[i], st)
		assignOne(lhs, origin, tainted)
	}
}

// exprTaint reports whether e's value derives from a taint source under
// the current state: it mentions a tainted object or contains a source
// call (direct, or a helper whose transfer summary taints its return).
func (p *Package) exprTaint(pr *Program, e ast.Expr, st taintFacts) (taintOrigin, bool) {
	var origin taintOrigin
	found := false
	inspectShallow(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if src, ok := p.taintSourceInter(pr, v); ok {
				origin = taintOrigin{src: src, pos: v.Pos()}
				found = true
			}
		case *ast.Ident:
			if obj := p.Info.Uses[v]; obj != nil {
				if o, ok := st[obj]; ok {
					origin = o
					found = true
				}
			}
		}
		return !found
	})
	return origin, found
}

// taintSourceInter is taintSource plus the interprocedural case: a call
// to an in-graph function whose summary proves a nondeterministic value
// can reach its return.
func (p *Package) taintSourceInter(pr *Program, call *ast.CallExpr) (string, bool) {
	if src, ok := p.taintSource(call); ok {
		return src, true
	}
	if pr == nil {
		return "", false
	}
	if callee := pr.calleeNode(p, call); callee != nil {
		if cs := pr.summaryOf(callee); cs.TaintsReturn {
			return cs.TaintSrc + " (via " + callee.Name + ")", true
		}
	}
	return "", false
}

// taintSource recognizes calls whose results differ between two runs of
// the same seed.
func (p *Package) taintSource(call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	// Values read BACK from obs instruments are wall-clock-derived: a
	// span duration or a counter snapshot flowing into generated data
	// is as nondeterministic as time.Now itself. (Recording INTO obs is
	// sanctioned — see obssanction.go; these are the read-out methods.)
	if obj.Pkg().Path() == obsPkgPath {
		switch name {
		case "End", "Value", "Count", "Sum", "Max", "Quantile":
			if s := p.Info.Selections[sel]; s != nil {
				if n := namedOf(s.Recv()); n != nil {
					return "obs." + n.Obj().Name() + "." + name, true
				}
			}
			return "obs." + name, true
		}
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallClockFuncs[name] {
			return "time." + name, true
		}
	case "math/rand", "math/rand/v2":
		return obj.Pkg().Path() + "." + name, true
	case "crypto/rand":
		return "crypto/rand." + name, true
	case "os":
		switch name {
		case "Getenv", "Environ", "Getpid", "Getppid", "Hostname", "Getuid":
			return "os." + name, true
		}
	}
	return "", false
}

// rootIdent returns the base identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
