package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintModule quantifies the shared-module cache: "fresh" pays
// the full from-source type-check of the module plus its stdlib imports
// on every iteration, "shared" hits the per-process cache after the
// first load. The gap is the time every extra consumer (CLI run, test,
// fixture load) saves by going through Module instead of NewLoader.
func BenchmarkLintModule(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, err := NewLoader(".")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.LoadModule(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		if _, _, err := Module("."); err != nil {
			b.Fatal(err) // prime the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := Module("."); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSummaries quantifies the summary cache: "cold" runs the full
// bottom-up SCC fixpoint (call graph + purity/escape/taint transfer for
// every function in the module) on each iteration, "warm" restores
// every package from a content-hash-keyed store first, so only the
// graph construction remains. The gap is what `dslint -cache` saves on
// a repeat run over an unchanged tree.
// BenchmarkValueTier times one full abstract-interpretation pass — the
// SSA-lite construction plus the interval/nilness/error-contract
// fixpoint and replay — over every value-tier package of the module
// (exec, plan, storage, obs). This is the marginal cost the value tier
// adds to a dslint run; the CI budget assertion (-budget 30s) bounds
// the same work. The per-package cache is cleared each iteration so
// every pass is cold.
func BenchmarkValueTier(b *testing.B) {
	_, pkgs, err := Module(".")
	if err != nil {
		b.Fatal(err)
	}
	pr := buildProgram(pkgs, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pkgs {
			p.valRes, p.valProg = nil, nil
			valueAnalyze(pr, p)
		}
	}
}

func BenchmarkSummaries(b *testing.B) {
	_, pkgs, err := Module(".")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildProgram(pkgs, nil)
		}
	})
	b.Run("warm", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "summaries.json")
		store := LoadSummaryStore(path)
		buildProgram(pkgs, store)
		if err := store.Save(); err != nil {
			b.Fatal(err)
		}
		warm := LoadSummaryStore(path)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buildProgram(pkgs, warm)
		}
	})
}
