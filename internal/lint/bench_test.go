package lint

import "testing"

// BenchmarkLintModule quantifies the shared-module cache: "fresh" pays
// the full from-source type-check of the module plus its stdlib imports
// on every iteration, "shared" hits the per-process cache after the
// first load. The gap is the time every extra consumer (CLI run, test,
// fixture load) saves by going through Module instead of NewLoader.
func BenchmarkLintModule(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, err := NewLoader(".")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.LoadModule(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		if _, _, err := Module("."); err != nil {
			b.Fatal(err) // prime the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := Module("."); err != nil {
				b.Fatal(err)
			}
		}
	})
}
