package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// deterministicPkgs are the generator-side packages whose output must
// be bit-identical across runs and parallelism levels (§3: everything
// the seeded-stream design guarantees, a wall-clock read or a global
// rand call silently destroys). The planner is held to the same bar:
// plan choice determines result row order, so a map-order or
// wall-clock dependence there breaks the cost-vs-greedy differential.
var deterministicPkgs = map[string]bool{
	"tpcds/internal/rng":     true,
	"tpcds/internal/dist":    true,
	"tpcds/internal/datagen": true,
	"tpcds/internal/qgen":    true,
	"tpcds/internal/scaling": true,
	"tpcds/internal/plan":    true,
}

// wallClockFuncs are the time package functions that read the clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// analyzeDeterminism bans wall-clock reads, the global math/rand and
// map-order-dependent iteration in generator packages.
func analyzeDeterminism(p *Package) []Diagnostic {
	if !deterministicPkgs[p.Path] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue // unparseable import path; the compiler already rejects it
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.diag(imp, "determinism",
					"import of %s: generator packages draw only from seeded internal/rng streams", path))
			}
		}
		// Wall-clock reads whose values flow only into internal/obs
		// recording calls are sanctioned (see obssanction.go).
		sanctionedObs := p.obsSanctionedRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				obj := p.Info.Uses[v.Sel]
				if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()] &&
					!containsPos(sanctionedObs, v.Pos()) {
					out = append(out, p.diag(v, "determinism",
						"time.%s reads the wall clock; generator output must be bit-deterministic", obj.Name()))
				}
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[v.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !isCollectAppend(v) {
						out = append(out, p.diag(v, "determinism",
							"iteration over map %s has nondeterministic order; collect and sort keys first",
							types.ExprString(v.X)))
					}
				}
			}
			return true
		})
	}
	return out
}

// isCollectAppend recognizes the one sanctioned map-range shape: a body
// that is exactly `s = append(s, k)`. Collecting keys is order-safe as
// long as the slice is sorted before use, which the surrounding code is
// expected to do (the "collect and sort" half of the idiom the rule's
// message asks for).
func isCollectAppend(v *ast.RangeStmt) bool {
	if v.Body == nil || len(v.Body.List) != 1 {
		return false
	}
	as, ok := v.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// cancelHelpers are the qctx methods a row-scale loop polls.
var cancelHelpers = map[string]bool{"tick": true, "done": true, "checkNow": true}

// analyzeCancelCheck flags row-range loops in internal/exec living in
// files that never reference the qctx cancellation helpers: such a file
// can scan millions of rows without a single context poll, breaking the
// bounded-latency guarantee of per-query timeouts.
func analyzeCancelCheck(p *Package) []Diagnostic {
	if p.Path != "tpcds/internal/exec" {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		polls := false
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && cancelHelpers[sel.Sel.Name] {
				polls = true
			}
			return !polls
		})
		if polls {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				if name := baseName(v.X); rowsLike(name) {
					out = append(out, p.diag(v, "cancelcheck",
						"loop over %s in a file that never polls qctx tick/done/checkNow", name))
				}
			case *ast.ForStmt:
				if v.Cond != nil && mentionsNumRows(v.Cond) {
					out = append(out, p.diag(v, "cancelcheck",
						"NumRows-bounded loop in a file that never polls qctx tick/done/checkNow"))
				}
			}
			return true
		})
	}
	return out
}

// baseName extracts the final identifier of an expression (x, t.x).
func baseName(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

// rowsLike reports whether a name denotes a row collection.
func rowsLike(name string) bool {
	return name == "rows" || strings.HasSuffix(name, "Rows") || strings.HasSuffix(name, "rows")
}

func mentionsNumRows(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "NumRows" {
			found = true
		}
		return !found
	})
	return found
}

// analyzeErrCheck flags calls whose error result is silently discarded:
// expression statements, defer/go statements, and assignments that send
// an error to the blank identifier.
func analyzeErrCheck(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(v.X).(*ast.CallExpr); ok {
					if p.returnsError(call) && !p.errSanctioned(call) {
						out = append(out, p.diag(v, "errcheck",
							"unchecked error returned by %s", types.ExprString(call.Fun)))
					}
				}
			case *ast.DeferStmt:
				if p.returnsError(v.Call) && !p.errSanctioned(v.Call) {
					out = append(out, p.diag(v, "errcheck",
						"deferred call to %s discards its error", types.ExprString(v.Call.Fun)))
				}
			case *ast.GoStmt:
				if p.returnsError(v.Call) && !p.errSanctioned(v.Call) {
					out = append(out, p.diag(v, "errcheck",
						"go statement discards the error returned by %s", types.ExprString(v.Call.Fun)))
				}
			case *ast.AssignStmt:
				if len(v.Rhs) != 1 {
					return true
				}
				call, ok := unparen(v.Rhs[0]).(*ast.CallExpr)
				if !ok || p.errSanctioned(call) {
					return true
				}
				results := p.callResults(call)
				if len(results) != len(v.Lhs) {
					return true
				}
				for i, lh := range v.Lhs {
					if id, ok := lh.(*ast.Ident); ok && id.Name == "_" && isErrorType(results[i]) {
						out = append(out, p.diag(v, "errcheck",
							"error result of %s discarded with _", types.ExprString(call.Fun)))
					}
				}
			}
			return true
		})
	}
	return out
}

// callResults returns the result types of a call, nil for non-signature
// callees (type conversions, builtins).
func (p *Package) callResults(call *ast.CallExpr) []types.Type {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	res := sig.Results()
	out := make([]types.Type, res.Len())
	for i := 0; i < res.Len(); i++ {
		out[i] = res.At(i).Type()
	}
	return out
}

func (p *Package) returnsError(call *ast.CallExpr) bool {
	for _, t := range p.callResults(call) {
		if isErrorType(t) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errSanctioned lists callees whose error can never fire or is by
// convention unactionable: in-memory writers (strings.Builder,
// bytes.Buffer, tabwriter over them is NOT included — its Flush
// surfaces real errors), fmt printing to the process streams (a CLI
// cannot do anything useful when its own stdout is gone — and library
// code using these is flagged by strayio anyway).
func (p *Package) errSanctioned(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods on infallible in-memory writers.
	if s := p.Info.Selections[sel]; s != nil {
		if n := namedOf(s.Recv()); n != nil {
			obj := n.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				// hash.Hash documents that Write never returns an error.
				case "hash.Hash", "hash.Hash32", "hash.Hash64":
					return true
				}
			}
		}
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	switch obj.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		w := unparen(call.Args[0])
		// Writing to the process streams.
		if ws, ok := w.(*ast.SelectorExpr); ok {
			if id, ok := ws.X.(*ast.Ident); ok && id.Name == "os" &&
				(ws.Sel.Name == "Stderr" || ws.Sel.Name == "Stdout") {
				return true
			}
		}
		// Writing to an infallible in-memory writer.
		if tv, ok := p.Info.Types[w]; ok && tv.Type != nil {
			if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() != nil {
				switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

// namedOf unwraps pointers to a named type.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// analyzePanics enforces the library panic convention: a panic must
// raise either the qctx cancellation sentinel or an invariant message
// prefixed "<pkg>: " so the query-boundary recover can attribute it.
// Anything else — panic(err), a bare re-panic, an unprefixed string —
// needs an explicit //lint:ignore with a reason.
func analyzePanics(p *Package) []Diagnostic {
	if p.Name == "main" {
		return nil
	}
	prefix := p.Name + ": "
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if len(call.Args) == 1 && p.panicSanctioned(prefix, call.Args[0]) {
				return true
			}
			out = append(out, p.diag(call, "panics",
				"panic must raise a %q-prefixed invariant message or the qctx cancel sentinel; return an error instead", prefix))
			return true
		})
	}
	return out
}

// panicSanctioned recognizes the two legal panic argument shapes.
func (p *Package) panicSanctioned(prefix string, e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.CompositeLit:
		// The cancellation sentinel: panic(cancelPanic{...}).
		if tv, ok := p.Info.Types[v]; ok {
			if n := namedOf(tv.Type); n != nil && n.Obj().Name() == "cancelPanic" {
				return true
			}
		}
	case *ast.BasicLit:
		if s, err := strconv.Unquote(v.Value); err == nil {
			return strings.HasPrefix(s, prefix)
		}
	case *ast.BinaryExpr:
		// "pkg: bad thing " + detail — the leftmost literal carries the prefix.
		return p.panicSanctioned(prefix, v.X)
	case *ast.CallExpr:
		// fmt.Sprintf("pkg: ...", args...).
		if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok && len(v.Args) > 0 {
			if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "fmt" && obj.Name() == "Sprintf" {
				return p.panicSanctioned(prefix, v.Args[0])
			}
		}
	}
	return false
}

// analyzeStrayIO keeps process-stream I/O out of library packages:
// fmt.Print* writes to a global stream the caller cannot redirect, and
// direct os.Stdout/os.Stderr references are the same defect one level
// lower. Main packages (cmd/, examples/) own their streams and are
// exempt.
func analyzeStrayIO(p *Package) []Diagnostic {
	if p.Name == "main" {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				obj := p.Info.Uses[v.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "fmt":
					switch obj.Name() {
					case "Print", "Printf", "Println":
						out = append(out, p.diag(v, "strayio",
							"fmt.%s writes to process stdout; library code takes an io.Writer", obj.Name()))
					}
				case "os":
					if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
						out = append(out, p.diag(v, "strayio",
							"os.%s referenced in library code; accept an io.Writer instead", obj.Name()))
					}
				}
			case *ast.CallExpr:
				if id, ok := unparen(v.Fun).(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
						out = append(out, p.diag(v, "strayio",
							"builtin %s writes to stderr; remove debugging output", id.Name))
					}
				}
			}
			return true
		})
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
