package lint

// obssanction.go — the observability carve-out of the determinism
// rules. Generator packages are banned from reading the wall clock
// because a clock reading that reaches generated data breaks the
// bit-repeatability contract (§3.2). Observability instrumentation,
// however, legitimately measures wall time: a datagen phase span or a
// build-duration histogram must read the clock and must never touch
// the data. The sanction encodes exactly that boundary:
//
//	start := time.Now()                   // sanctioned …
//	t := gen()
//	reg.Histogram("ns").ObserveDuration(time.Since(start)) // … because
//	                                      // every read of start lands in
//	                                      // an obs recording call
//
// A wall-clock value is sanctioned only when every use of it flows
// into internal/obs; one additional use that escapes toward storage —
// or anywhere else — keeps the ban in force. The converse leak, a
// value read BACK from obs instruments (a span duration, a counter
// value) flowing into generated data, is caught by taintdet, which
// treats those reads as taint sources (see taintSource).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// obsPkgPath is the observability package whose recording calls are
// the one sanctioned destination for wall-clock values. Subpackages
// (internal/obs/debugd, the diagnostics endpoint) share the sanction:
// they are part of the same observability boundary and never touch
// generated data.
const obsPkgPath = "tpcds/internal/obs"

// isObsPkg reports whether path is internal/obs or one of its
// subpackages.
func isObsPkg(path string) bool {
	return path == obsPkgPath || strings.HasPrefix(path, obsPkgPath+"/")
}

// isObsCall reports whether call invokes a function or method defined
// in internal/obs or a subpackage (Registry.Histogram,
// Histogram.ObserveDuration, Span.SetAttrInt, debugd.Start, …).
func (p *Package) isObsCall(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && isObsPkg(obj.Pkg().Path())
}

// posRange is a half-open source interval [lo, hi).
type posRange struct{ lo, hi token.Pos }

func containsPos(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// obsSanctionedRanges computes the source ranges of one file whose
// wall-clock reads are sanctioned: the argument lists of obs calls,
// plus — by fixpoint — the assignment sources of every local variable
// whose reads all land inside already-sanctioned ranges. The fixpoint
// runs backward through def-use chains: sanctioning ObserveDuration's
// argument sanctions `elapsed`, which sanctions `elapsed :=
// time.Since(start)`, which sanctions `start`, which sanctions `start
// := time.Now()`. A variable with even one escaping read never becomes
// sanctioned, so a value reaching both obs and storage stays banned.
func (p *Package) obsSanctionedRanges(f *ast.File) []posRange {
	var ranges []posRange
	// Seed: every argument of every obs call.
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && p.isObsCall(call) {
			for _, a := range call.Args {
				ranges = append(ranges, posRange{a.Pos(), a.End()})
			}
		}
		return true
	})
	if len(ranges) == 0 {
		return nil
	}

	// Def-use index of the file's local variables: read positions
	// (excluding plain-assignment writes) and assignment sources.
	type varInfo struct {
		reads []token.Pos
		rhs   []ast.Expr
	}
	vars := map[types.Object]*varInfo{}
	local := map[types.Object]bool{}
	info := func(obj types.Object) *varInfo {
		vi := vars[obj]
		if vi == nil {
			vi = &varInfo{}
			vars[obj] = vi
		}
		return vi
	}
	writes := map[token.Pos]bool{}
	recordAssign := func(lhs []ast.Expr, rhs []ast.Expr, tok token.Token) {
		if len(lhs) != len(rhs) {
			// Multi-value unpacking (a, b := f()): no per-variable
			// source attribution; conservatively leave unsanctioned.
			return
		}
		for i, l := range lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			info(obj).rhs = append(info(obj).rhs, rhs[i])
			if tok == token.ASSIGN {
				// Plain reassignment: the LHS ident is a write, not a
				// read. Compound tokens (+=) read the old value and are
				// left as reads.
				writes[id.Pos()] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			recordAssign(v.Lhs, v.Rhs, v.Tok)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(v.Names))
			for i, name := range v.Names {
				lhs[i] = name
			}
			recordAssign(lhs, v.Values, token.DEFINE)
		case *ast.Ident:
			if obj := p.Info.Defs[v]; obj != nil {
				local[obj] = true
			}
			if obj := p.Info.Uses[v]; obj != nil && local[obj] {
				info(obj).reads = append(info(obj).reads, v.Pos())
			}
		}
		return true
	})

	// Fixpoint: sanction variables whose every read is sanctioned.
	sanctioned := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, vi := range vars {
			if sanctioned[obj] || len(vi.reads) == 0 {
				continue
			}
			ok := true
			for _, pos := range vi.reads {
				if !writes[pos] && !containsPos(ranges, pos) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			sanctioned[obj] = true
			changed = true
			for _, r := range vi.rhs {
				ranges = append(ranges, posRange{r.Pos(), r.End()})
			}
		}
	}
	return ranges
}
