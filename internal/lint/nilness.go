package lint

// nilness.go is the pointer half of the value tier: a three-point
// lattice (nil / non-nil / unknown) over pointer-shaped values —
// pointers, maps, slices, channels, functions, and interfaces. Facts
// come from literal syntax (&x, composite literals, make, new, func
// literals are non-nil; an uninitialized var declaration is nil),
// from branch refinement (`if x != nil` edges, handled in
// valueflow.go's refineCond), and from PR-8 callee summaries
// (ReturnsNilErrOn / NonNilResultWhenNilErr).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nil3 is the nilness lattice value. The zero value is unknown (⊤).
type nil3 uint8

const (
	nlUnknown nil3 = iota
	nlNil
	nlNonNil
)

func (n nil3) String() string {
	switch n {
	case nlNil:
		return "nil"
	case nlNonNil:
		return "non-nil"
	}
	return "unknown"
}

// nilJoin is the lattice join: agreement survives, disagreement is ⊤.
func nilJoin(a, b nil3) nil3 {
	if a == b {
		return a
	}
	return nlUnknown
}

// nilable reports whether values of t carry a meaningful nilness fact:
// pointers, maps, slices, channels, functions, interfaces, and unsafe
// pointers. Everything else (ints, structs, strings, ...) has none.
func nilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(p *Package, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// exprNilness classifies an expression's nilness from syntax alone,
// without consulting the environment: literals and allocating calls.
// The caller handles identifiers, calls with summaries, and anything
// environment-dependent.
func exprNilness(p *Package, e ast.Expr) nil3 {
	e = unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		if isNilIdent(p, e) {
			return nlNil
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return nlNonNil // &x
		}
	case *ast.CompositeLit:
		return nlNonNil // T{...}, []T{...}, map[K]V{...}
	case *ast.FuncLit:
		return nlNonNil
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new", "append":
				if p.Info.Uses[id] == nil || p.Info.Uses[id].Parent() == types.Universe {
					// make/new always allocate; append's result is
					// non-nil when it appends at least one element,
					// which the caller checks (len(Args) matters).
					if id.Name != "append" {
						return nlNonNil
					}
				}
			}
		}
	}
	return nlUnknown
}
