package lint

// Structural invariants of the SSA-lite def-use form (ssa.go): φ-nodes
// appear exactly at join blocks where ≥2 definitions of a variable
// meet, every identifier use is chained to a complete, well-formed
// reaching-definition set, and loop heads (the widening points of the
// interval analysis) are the targets of retreating edges. The fixtures
// are the two canonical CFG shapes — the if/else diamond and the
// counted loop — plus a straight-line control.

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// buildSSA type-checks src as a standalone package and returns the
// def-use form of the named function.
func buildSSA(t *testing.T, src, fn string) (*Package, *ssaFunc, *ast.FuncDecl) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, _, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "tpcds/internal/ssafix")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
				return pkg, newSSA(pkg, funcScope{name: fn, decl: fd, body: fd.Body}), fd
			}
		}
	}
	t.Fatalf("function %s not found in fixture", fn)
	return nil, nil, nil
}

// checkWellFormed asserts the invariants every ssaFunc must satisfy,
// independent of shape: def ids are dense and indexable, byObj agrees
// with defs, φs sit only at multi-predecessor blocks with ≥2 ascending
// incoming defs of a single object, every recorded use resolves to a
// non-empty def set of the same object, and the RPO is a permutation
// of the blocks with the entry first.
func checkWellFormed(t *testing.T, s *ssaFunc) {
	t.Helper()
	for i, d := range s.defs {
		if d.id != i {
			t.Errorf("def %d has id %d; want dense ids", i, d.id)
		}
		found := false
		for _, bd := range s.byObj[d.obj] {
			if bd == d {
				found = true
			}
		}
		if !found {
			t.Errorf("def %d of %s missing from byObj", d.id, d.obj.Name())
		}
	}
	for blk, phis := range s.phis {
		if len(s.preds[blk]) < 2 {
			t.Errorf("φ at block with %d predecessors; joins need ≥2", len(s.preds[blk]))
		}
		for _, phi := range phis {
			if len(phi.defs) < 2 {
				t.Errorf("φ for %s merges %d defs; want ≥2", phi.obj.Name(), len(phi.defs))
			}
			for i, d := range phi.defs {
				if d.obj != phi.obj {
					t.Errorf("φ for %s lists a def of %s", phi.obj.Name(), d.obj.Name())
				}
				if i > 0 && phi.defs[i-1].id >= d.id {
					t.Errorf("φ for %s has non-ascending def ids", phi.obj.Name())
				}
			}
		}
	}
	for id, defs := range s.uses {
		if len(defs) == 0 {
			t.Errorf("use of %s at %v has no reaching definitions", id.Name, id.Pos())
		}
		for i, d := range defs {
			if d.obj.Name() != id.Name {
				t.Errorf("use of %s chained to a def of %s", id.Name, d.obj.Name())
			}
			if d.id < 0 || d.id >= len(s.defs) || s.defs[d.id] != d {
				t.Errorf("use of %s chained to def with dangling id %d", id.Name, d.id)
			}
			if i > 0 && defs[i-1].id >= d.id {
				t.Errorf("use of %s has non-ascending reaching defs", id.Name)
			}
		}
	}
	if len(s.rpo) != len(s.g.Blocks) {
		t.Errorf("rpo covers %d blocks; CFG has %d", len(s.rpo), len(s.g.Blocks))
	}
	seen := map[*Block]bool{}
	for i, blk := range s.rpo {
		if seen[blk] {
			t.Errorf("block repeated in rpo")
		}
		seen[blk] = true
		if s.rpoIdx[blk] != i {
			t.Errorf("rpoIdx disagrees with rpo order at %d", i)
		}
	}
	if s.g.Entry != nil && len(s.rpo) > 0 && s.rpo[0] != s.g.Entry {
		t.Errorf("entry block is not first in reverse postorder")
	}
}

// useOf finds the single identifier use of name inside node.
func useOf(t *testing.T, s *ssaFunc, node ast.Node, name string) []*ssaDef {
	t.Helper()
	var defs []*ssaDef
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if d, ok := s.uses[id]; ok {
				defs, found = d, true
			}
		}
		return true
	})
	if !found {
		t.Fatalf("no recorded use of %s in %T", name, node)
	}
	return defs
}

const diamondSrc = `package ssafix

func diamond(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}
`

// TestSSADiamond: both arms of the if/else redefine x, so exactly one
// φ merges the two arm definitions at the join, the initial definition
// is strongly killed, and the use in the return sees exactly the φ's
// operands.
func TestSSADiamond(t *testing.T) {
	_, s, fd := buildSSA(t, diamondSrc, "diamond")
	checkWellFormed(t, s)

	var all []*ssaPhi
	var joins []*Block
	for blk, phis := range s.phis {
		all = append(all, phis...)
		joins = append(joins, blk)
	}
	if len(all) != 1 {
		t.Fatalf("diamond has %d φ-nodes; want exactly 1: %+v", len(all), all)
	}
	phi := all[0]
	if phi.obj.Name() != "x" {
		t.Fatalf("φ merges %s; want x", phi.obj.Name())
	}
	if len(phi.defs) != 2 {
		t.Fatalf("φ for x merges %d defs; want the 2 arm assignments", len(phi.defs))
	}
	for _, d := range phi.defs {
		if _, ok := d.node.(*ast.AssignStmt); !ok {
			t.Errorf("φ operand is %T; want the arm *ast.AssignStmt (x := 0 must be killed)", d.node)
		}
	}

	// The join block is the one holding the return statement.
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	onJoin := false
	for _, node := range joins[0].Nodes {
		if node == ast.Node(ret) {
			onJoin = true
		}
	}
	if !onJoin {
		t.Errorf("the single join block does not hold the return statement")
	}

	// Def-use: the returned x reaches exactly the φ's operands.
	defs := useOf(t, s, ret, "x")
	if len(defs) != 2 || defs[0] != phi.defs[0] || defs[1] != phi.defs[1] {
		t.Errorf("return use of x reaches %d defs; want the 2 φ operands", len(defs))
	}

	// No loop ⇒ no widening points.
	if len(s.heads) != 0 {
		t.Errorf("diamond has %d loop heads; want 0", len(s.heads))
	}
}

const loopSrc = `package ssafix

func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`

// TestSSALoop: the for-loop head is the single widening point, it
// carries φs for both induction variables (init def ⊔ back-edge def),
// the condition's use of i sees both, and the post-loop use of s sees
// both its initial and its body definition.
func TestSSALoop(t *testing.T) {
	_, s, fd := buildSSA(t, loopSrc, "loop")
	checkWellFormed(t, s)

	if len(s.heads) != 1 {
		t.Fatalf("loop has %d widening points; want exactly 1", len(s.heads))
	}
	var head *Block
	for blk := range s.heads {
		head = blk
	}
	// The retreating edge makes the head a join; its φs must cover both
	// variables with two incoming definitions each.
	byName := map[string]*ssaPhi{}
	for _, phi := range s.phis[head] {
		byName[phi.obj.Name()] = phi
	}
	for _, name := range []string{"i", "s"} {
		phi := byName[name]
		if phi == nil {
			t.Fatalf("loop head has no φ for %s; got %v", name, byName)
		}
		if len(phi.defs) != 2 {
			t.Errorf("φ for %s merges %d defs; want init + back-edge", name, len(phi.defs))
		}
	}
	if _, ok := byName["i"].defs[1].node.(*ast.IncDecStmt); !ok {
		t.Errorf("second φ operand of i is %T; want the i++ *ast.IncDecStmt", byName["i"].defs[1].node)
	}

	// The condition i < n uses i with both definitions reaching.
	var forStmt *ast.ForStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok {
			forStmt = f
		}
		return true
	})
	if got := useOf(t, s, forStmt.Cond, "i"); len(got) != 2 {
		t.Errorf("condition use of i reaches %d defs; want 2", len(got))
	}

	// The post-loop return of s sees s := 0 and s += i.
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	if got := useOf(t, s, ret, "s"); len(got) != 2 {
		t.Errorf("return use of s reaches %d defs; want init + body", len(got))
	}

	// The head precedes the body in reverse postorder.
	if s.rpoIdx[head] == 0 {
		t.Errorf("loop head is the entry block; the init statement must come first")
	}
}

const straightSrc = `package ssafix

func straight(a int) int {
	b := a + 1
	b = b * 2
	return b
}
`

// TestSSAStraightLine: sequential redefinition without joins produces
// no φs and no widening points, and each use sees exactly the one
// dominating definition.
func TestSSAStraightLine(t *testing.T) {
	_, s, fd := buildSSA(t, straightSrc, "straight")
	checkWellFormed(t, s)
	if len(s.phis) != 0 {
		t.Errorf("straight-line code has φ-nodes: %v", s.phis)
	}
	if len(s.heads) != 0 {
		t.Errorf("straight-line code has widening points")
	}
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	defs := useOf(t, s, ret, "b")
	if len(defs) != 1 {
		t.Fatalf("return use of b reaches %d defs; want the single latest", len(defs))
	}
	if as, ok := defs[0].node.(*ast.AssignStmt); !ok || len(as.Rhs) != 1 {
		t.Errorf("latest def of b is %T; want the b = b * 2 assignment", defs[0].node)
	}
}
