package lint

// cfg.go builds intraprocedural control-flow graphs over go/ast
// function bodies — the substrate the flow-sensitive analyzers
// (lockcheck, goleak, taintdet) run their dataflow on. The graph is
// statement-granular: every block holds the AST nodes that execute in
// order when the block runs, and edges follow Go's control
// constructs — if/else joins, loop back-edges and exits, switch and
// select dispatch (including fallthrough), break/continue with labels,
// and return/panic/os.Exit edges to a single synthetic exit block.
//
// Deliberate simplifications, each conservative for our analyses:
//
//   - goto is modeled as an edge to the exit block (the repo bans no
//     goto outright, but none exists; a goto would at worst lose
//     precision, never soundness, for the union-join analyses);
//   - function literals are opaque: their bodies are NOT inlined into
//     the enclosing graph (a closure runs at an unknown time), and each
//     literal gets its own CFG when the per-function analyzers visit it;
//   - defer is recorded as an ordinary node where it executes its
//     *registration*; analyzers that care about the deferred call's
//     effect at exit (lockcheck) interpret the DeferStmt themselves.

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body. Entry is the
// first executed block; Exit is a synthetic empty block every
// return/panic/fallthrough-off-the-end edge targets.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is a straight-line run of AST nodes with outgoing edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Branch metadata for the value tier (ssa.go, interval.go,
	// nilness.go). When Cond is non-nil the block ends in a two-way
	// branch on Cond and TrueSucc/FalseSucc are the successors taken
	// when the condition is true/false. When Range is non-nil the block
	// is a range-loop head: TrueSucc is the body (one more iteration),
	// FalseSucc the exit. Both nil: the edges carry no condition. The
	// fields are additive — analyzers that only read Succs are
	// unaffected.
	Cond     ast.Expr
	Range    *ast.RangeStmt
	TrueSucc *Block
	FalseSucc *Block
}

func (b *Block) addSucc(s *Block) {
	for _, x := range b.Succs {
		if x == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// cfgBuilder carries the under-construction graph. cur == nil means the
// current point is statically unreachable (after return/break/...); the
// next statement then starts a fresh predecessor-less block so analyses
// still see its nodes.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// levels stacks the enclosing breakable constructs, innermost last.
	levels []branchLevel

	// terminates reports whether a statement never returns (panic,
	// os.Exit, runtime.Goexit, log.Fatal*); supplied by the Package so
	// the builder stays types-aware without importing the info itself.
	terminates func(ast.Stmt) bool
}

// branchLevel is one enclosing for/range/switch/select: the target of
// break (and, for loops, continue) statements addressed at it.
type branchLevel struct {
	label string // the wrapping LabeledStmt's name, "" if none
	brk   *Block
	cont  *Block // nil for switch/select (continue skips them)
}

// buildCFG constructs the graph of one function body.
func buildCFG(body *ast.BlockStmt, terminates func(ast.Stmt) bool) *CFG {
	if terminates == nil {
		terminates = func(ast.Stmt) bool { return false }
	}
	b := &cfgBuilder{cfg: &CFG{}, terminates: terminates}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List, "")
	if b.cur != nil {
		b.cur.addSucc(b.cfg.Exit)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// ensure returns the current block, starting a fresh unreachable one if
// control cannot reach this point (dead code is still analyzed).
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.ensure().Nodes = append(b.ensure().Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for _, s := range list {
		b.stmt(s, label)
		label = ""
	}
}

// stmt translates one statement. label is the name of the LabeledStmt
// immediately wrapping s ("" if none); it binds break/continue targets.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(v.List, "")
	case *ast.LabeledStmt:
		// Start a fresh block so the label has a well-defined target,
		// then translate the inner statement with the label bound.
		next := b.newBlock()
		b.ensure().addSucc(next)
		b.cur = next
		b.stmt(v.Stmt, v.Label.Name)
	case *ast.IfStmt:
		b.ifStmt(v)
	case *ast.ForStmt:
		b.forStmt(v, label)
	case *ast.RangeStmt:
		b.rangeStmt(v, label)
	case *ast.SwitchStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		if v.Tag != nil {
			b.add(v.Tag)
		}
		b.switchBody(v.Body, label)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		b.add(v.Assign)
		b.switchBody(v.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(v, label)
	case *ast.ReturnStmt:
		b.add(v)
		b.ensure().addSucc(b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(v)
	default:
		// Straight-line statements: decl, assign, expr, send, inc/dec,
		// defer, go, empty. Terminating calls (panic, os.Exit) edge to
		// exit and end the block.
		b.add(s)
		if b.terminates(s) {
			b.ensure().addSucc(b.cfg.Exit)
			b.cur = nil
		}
	}
}

func (b *cfgBuilder) ifStmt(v *ast.IfStmt) {
	if v.Init != nil {
		b.add(v.Init)
	}
	b.add(v.Cond)
	head := b.ensure()

	thenB := b.newBlock()
	head.addSucc(thenB)
	head.Cond = v.Cond
	head.TrueSucc = thenB
	b.cur = thenB
	b.stmtList(v.Body.List, "")
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := v.Else != nil
	if hasElse {
		elseB := b.newBlock()
		head.addSucc(elseB)
		head.FalseSucc = elseB
		b.cur = elseB
		b.stmt(v.Else, "")
		elseEnd = b.cur
	}

	after := b.newBlock()
	if thenEnd != nil {
		thenEnd.addSucc(after)
	}
	if hasElse {
		if elseEnd != nil {
			elseEnd.addSucc(after)
		}
	} else {
		head.addSucc(after)
		head.FalseSucc = after
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(v *ast.ForStmt, label string) {
	if v.Init != nil {
		b.add(v.Init)
	}
	head := b.newBlock()
	b.ensure().addSucc(head)
	b.cur = head
	if v.Cond != nil {
		b.add(v.Cond)
	}

	after := b.newBlock()
	var post *Block
	if v.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, v.Post)
		post.addSucc(head) // back to cond
	}
	contTarget := head
	if post != nil {
		contTarget = post
	}
	if v.Cond != nil {
		head.addSucc(after)
	}

	body := b.newBlock()
	head.addSucc(body)
	if v.Cond != nil {
		head.Cond = v.Cond
		head.TrueSucc = body
		head.FalseSucc = after
	}
	b.pushTargets(label, after, contTarget)
	b.cur = body
	b.stmtList(v.Body.List, "")
	b.popTargets()
	if b.cur != nil {
		if post != nil {
			b.cur.addSucc(post)
		} else {
			b.cur.addSucc(head)
		}
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(v *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.ensure().addSucc(head)
	// The RangeStmt node itself represents the per-iteration key/value
	// binding and the ranged operand evaluation.
	head.Nodes = append(head.Nodes, v)

	after := b.newBlock()
	head.addSucc(after) // zero iterations

	body := b.newBlock()
	head.addSucc(body)
	head.Range = v
	head.TrueSucc = body
	head.FalseSucc = after
	b.pushTargets(label, after, head)
	b.cur = body
	b.stmtList(v.Body.List, "")
	b.popTargets()
	if b.cur != nil {
		b.cur.addSucc(head)
	}
	b.cur = after
}

// switchBody translates the case clauses of a switch/type-switch whose
// head nodes are already placed in the current block.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	head := b.ensure()
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		head.addSucc(blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.addSucc(after)
	}
	b.pushTargets(label, after, nil)
	for i, cc := range clauses {
		b.cur = blocks[i]
		// The clause node stands for the case-expression comparisons.
		b.cur.Nodes = append(b.cur.Nodes, cc)
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmtList(stmts, "")
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.cur.addSucc(blocks[i+1])
			} else {
				b.cur.addSucc(after)
			}
		}
	}
	b.popTargets()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(v *ast.SelectStmt, label string) {
	head := b.ensure()
	after := b.newBlock()
	b.pushTargets(label, after, nil)
	for _, s := range v.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.addSucc(blk)
		b.cur = blk
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.stmtList(cc.Body, "")
		if b.cur != nil {
			b.cur.addSucc(after)
		}
	}
	b.popTargets()
	// A select with no clauses blocks forever; `after` then has no
	// predecessors, which models exactly that.
	b.cur = after
}

func (b *cfgBuilder) branchStmt(v *ast.BranchStmt) {
	label := ""
	if v.Label != nil {
		label = v.Label.Name
	}
	switch v.Tok {
	case token.BREAK:
		target := b.cfg.Exit
		for i := len(b.levels) - 1; i >= 0; i-- {
			if label == "" || b.levels[i].label == label {
				target = b.levels[i].brk
				break
			}
		}
		b.ensure().addSucc(target)
		b.cur = nil
	case token.CONTINUE:
		target := b.cfg.Exit
		for i := len(b.levels) - 1; i >= 0; i-- {
			if b.levels[i].cont == nil {
				continue // switch/select: continue skips them
			}
			if label == "" || b.levels[i].label == label {
				target = b.levels[i].cont
				break
			}
		}
		b.ensure().addSucc(target)
		b.cur = nil
	case token.GOTO:
		// Conservative: treat like an exit edge (see file comment).
		b.ensure().addSucc(b.cfg.Exit)
		b.cur = nil
	case token.FALLTHROUGH:
		// Only legal as the last statement of a case clause, where
		// switchBody strips it; seeing one here means dead code.
		b.cur = nil
	}
}

// pushTargets binds break/continue destinations for one loop or
// switch/select level. cont == nil for switch/select (continue passes
// through them to the enclosing loop).
func (b *cfgBuilder) pushTargets(label string, brk, cont *Block) {
	b.levels = append(b.levels, branchLevel{label: label, brk: brk, cont: cont})
}

func (b *cfgBuilder) popTargets() {
	b.levels = b.levels[:len(b.levels)-1]
}
