package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// renderProgram flattens a Program into one deterministic string: every
// node with its summary and resolved callees, in node order.
func renderProgram(pr *Program) string {
	var sb strings.Builder
	for _, n := range pr.Nodes {
		fmt.Fprintf(&sb, "%s: %s", n.Name, n.Summary())
		for _, c := range n.Calls {
			fmt.Fprintf(&sb, " -> %s", c.Name)
		}
		if n.CallsUnknown {
			sb.WriteString(" [unknown]")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCallGraphDeterminism pins the property the CI byte-diff check
// relies on: two independent builds over the same packages produce
// identical node order, edges, and summaries.
func TestCallGraphDeterminism(t *testing.T) {
	_, pkgs, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	a := renderProgram(buildProgram(pkgs, nil))
	b := renderProgram(buildProgram(pkgs, nil))
	if a != b {
		t.Errorf("two call-graph builds differ:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// loadFixture type-checks one testdata package under a virtual path.
func loadFixture(t *testing.T, name, virtualPath string) *Package {
	t.Helper()
	loader, _, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, virtualPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// TestSummaryFacts checks the computed summaries of fixture functions
// with known-by-construction behavior, including the mutually
// recursive pair that exercises the SCC fixpoint.
func TestSummaryFacts(t *testing.T) {
	taint := buildProgram([]*Package{loadFixture(t, "taintinter", "tpcds/internal/datagen")}, nil)
	share := buildProgram([]*Package{loadFixture(t, "sharecap", "tpcds/internal/exec")}, nil)

	find := func(pr *Program, name string) *FuncNode {
		t.Helper()
		n, candidates := pr.FindNode(name)
		if n == nil {
			t.Fatalf("no node %q (candidates: %v)", name, candidates)
		}
		return n
	}

	if s := find(taint, "stamp").Summary(); !s.TaintsReturn || s.TaintSrc != "time.Now" {
		t.Errorf("stamp: want taints-return from time.Now, got %v", s)
	}
	if s := find(taint, "emit").Summary(); s.ParamToSink&1 == 0 {
		t.Errorf("emit: want param 0 to sink, got %v", s)
	}
	// The SCC fixpoint must terminate on walkEven<->walkOdd and carry
	// param 1 (t) to the return of both members.
	for _, name := range []string{"walkEven", "walkOdd"} {
		if s := find(taint, name).Summary(); s.ParamToRet&2 == 0 {
			t.Errorf("%s: want param 1 to return through the recursion, got %v", name, s)
		}
	}
	if s := find(taint, "rowsFor").Summary(); s.CallsUnknown || s.MutatesParam != 0 || s.WritesGlobal {
		t.Errorf("rowsFor: want a fully-resolved effect-free summary, got %v", s)
	}

	if s := find(share, "bumpCount").Summary(); s.MutatesParam&1 == 0 {
		t.Errorf("bumpCount: want plain mutation of param 0, got %v", s)
	}
}

// TestSummaryStoreRoundTrip checks the persistence path: a store
// populated by one build restores into the next and yields identical
// summaries, and a corrupt store file degrades to empty instead of
// failing.
func TestSummaryStoreRoundTrip(t *testing.T) {
	_, pkgs, err := Module(".")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "summaries.json")

	cold := LoadSummaryStore(path)
	want := renderProgram(buildProgram(pkgs, cold))
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}

	warm := LoadSummaryStore(path)
	if len(warm.entries) == 0 {
		t.Fatal("saved store reloaded empty")
	}
	if got := renderProgram(buildProgram(pkgs, warm)); got != want {
		t.Errorf("warm-restored summaries differ from cold build:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := LoadSummaryStore(path)
	if len(corrupt.entries) != 0 {
		t.Error("corrupt store should load as empty")
	}
	if got := renderProgram(buildProgram(pkgs, corrupt)); got != want {
		t.Error("corrupt store changed analysis results")
	}
}

// TestFindNode covers the -summary name resolution: exact display
// names, unique suffixes, and ambiguity reporting.
func TestFindNode(t *testing.T) {
	pr := buildProgram([]*Package{loadFixture(t, "pubfreeze", "tpcds/internal/pubfix")}, nil)

	if n, _ := pr.FindNode("pubfix.rename"); n == nil || n.Name != "pubfix.rename" {
		t.Errorf("exact lookup failed: %v", n)
	}
	if n, _ := pr.FindNode("putThenPatch"); n == nil || n.Name != "pubfix.putThenPatch" {
		t.Errorf("suffix lookup failed: %v", n)
	}
	// Two Put methods (planCache, statsCache): the bare suffix is
	// ambiguous and must list both candidates.
	if n, candidates := pr.FindNode("Put"); n != nil || len(candidates) != 2 {
		t.Errorf("ambiguous lookup: node=%v candidates=%v", n, candidates)
	}
	if n, candidates := pr.FindNode("(planCache).Put"); n == nil || len(candidates) != 0 {
		t.Errorf("qualified suffix lookup: node=%v candidates=%v", n, candidates)
	}
}
