package tpchlite

import (
	"math"
	"testing"
	"time"

	"tpcds/internal/exec"
	"tpcds/internal/scaling"
	"tpcds/internal/storage"
)

const testSF = 0.002

var sharedDB = Generate(testSF, 1)

func TestSchemaShape(t *testing.T) {
	tabs := Tables()
	if len(tabs) != 8 {
		t.Fatalf("tables = %d, TPC-H has 8", len(tabs))
	}
	// The paper: TPC-H's low column counts don't reveal optimizer
	// differences; verify our baseline is indeed much narrower than
	// TPC-DS (avg 18 columns).
	total := 0
	for _, tb := range tabs {
		total += len(tb.Columns)
	}
	avg := float64(total) / float64(len(tabs))
	if avg > 10 {
		t.Errorf("baseline avg columns = %.1f, should be well below TPC-DS's 18", avg)
	}
}

func TestRowcountsLinear(t *testing.T) {
	// Core critique: EVERY main table scales linearly, including
	// customers and parts.
	for _, tb := range []string{"supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
		lo, hi := Rows(tb, 1), Rows(tb, 10)
		if ratio := float64(hi) / float64(lo); math.Abs(ratio-10) > 0.01 {
			t.Errorf("%s grows %.2fx per 10x SF, want exactly 10x", tb, ratio)
		}
	}
	if Rows("region", 1) != Rows("region", 100000) {
		t.Error("region should be fixed")
	}
}

// TestUnrealisticAtScale pins the paper's numeric example: "at scale
// factor 100,000 the database models a retailer selling 20 billion
// distinct parts to 15 billion customers".
func TestUnrealisticAtScale(t *testing.T) {
	if got := Rows("part", 100000); got != 20_000_000_000 {
		t.Errorf("parts at SF100000 = %d, paper says 20 billion", got)
	}
	if got := Rows("customer", 100000); got != 15_000_000_000 {
		t.Errorf("customers at SF100000 = %d, paper says 15 billion", got)
	}
	if got := Rows("orders", 100000); got != 150_000_000_000 {
		t.Errorf("orders at SF100000 = %d, paper says 150 billion transactions", got)
	}
}

func TestGenerateAllTables(t *testing.T) {
	for _, tb := range Tables() {
		got := sharedDB.Table(tb.Name)
		if got == nil || got.NumRows() == 0 {
			t.Errorf("table %s missing or empty", tb.Name)
			continue
		}
		if int64(got.NumRows()) != Rows(tb.Name, testSF) {
			t.Errorf("%s rows = %d, model says %d", tb.Name, got.NumRows(), Rows(tb.Name, testSF))
		}
	}
}

// TestUniformDates: order dates must be un-skewed (flat months) — the
// anti-property of the TPC-DS seasonal distribution.
func TestUniformDates(t *testing.T) {
	orders := sharedDB.Table("orders")
	dateCol := orders.Def.ColumnIndex("o_orderdate")
	counts := make([]int, 13)
	for r := 0; r < orders.NumRows(); r++ {
		_, m, _ := storage.YMDFromDays(orders.Get(r, dateCol).AsInt())
		counts[m]++
	}
	min, max := counts[1], counts[1]
	for m := 2; m <= 12; m++ {
		if counts[m] < min {
			min = counts[m]
		}
		if counts[m] > max {
			max = counts[m]
		}
	}
	if min == 0 {
		t.Fatal("a month has no orders")
	}
	if spread := float64(max) / float64(min); spread > 1.5 {
		t.Errorf("order months spread %.2fx; baseline should be uniform", spread)
	}
}

func TestQueriesExecute(t *testing.T) {
	eng := exec.New(sharedDB)
	qs := Queries()
	if len(qs) < 8 {
		t.Fatalf("query set = %d, want >= 8", len(qs))
	}
	for i, q := range qs {
		if _, err := eng.Query(q); err != nil {
			t.Errorf("baseline query %d failed: %v", i+1, err)
		}
	}
}

// TestPowerMetricWeakness demonstrates §5.3's critique: improving one
// query from 6h to 2h moves the geometric mean exactly as much as
// improving another from 6s to 2s.
func TestPowerMetricWeakness(t *testing.T) {
	base := []time.Duration{6 * time.Hour, 6 * time.Second, time.Minute}
	fastBig := []time.Duration{2 * time.Hour, 6 * time.Second, time.Minute}
	fastSmall := []time.Duration{6 * time.Hour, 2 * time.Second, time.Minute}
	a := PowerMetric(100, fastBig) / PowerMetric(100, base)
	b := PowerMetric(100, fastSmall) / PowerMetric(100, base)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("power metric gains differ: 6h->2h gives %.6f, 6s->2s gives %.6f", a, b)
	}
	if a <= 1 {
		t.Error("improvement should raise the metric")
	}
}

func TestPowerMetricEdge(t *testing.T) {
	if PowerMetric(100, nil) != 0 {
		t.Error("empty times should yield 0")
	}
	if PowerMetric(0, []time.Duration{time.Second}) != 0 {
		t.Error("zero SF should yield 0")
	}
}

// TestLinearVsSublinearContrast quantifies the §3.1 comparison at a
// large scale factor: TPC-H-lite customers explode linearly while the
// TPC-DS model stays realistic.
func TestLinearVsSublinearContrast(t *testing.T) {
	hCustomers := Rows("customer", 100000)
	dsCustomers := scaling.Rows("customer", 100000)
	if hCustomers <= dsCustomers*100 {
		t.Errorf("baseline customers (%d) should dwarf TPC-DS customers (%d)",
			hCustomers, dsCustomers)
	}
}

func TestRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown table should panic")
		}
	}()
	Rows("nope", 1)
}
