// Package tpchlite implements a reduced TPC-H-style baseline: the
// previous-generation decision support benchmark the paper contrasts
// TPC-DS against (§1). It reproduces the properties the paper
// criticizes, so the benchmark-level benchmarks can demonstrate the
// differences:
//
//   - a pure 3NF schema of 8 tables with few columns,
//   - uniform, un-skewed synthetic data ("imposes little challenges on
//     statistic collection and optimal plan generation"),
//   - linear scaling of the main tables — customers and parts grow with
//     the scale factor, producing the "20 billion distinct parts to 15
//     billion customers" absurdity at large SF, and
//   - a geometric-mean power metric, under which "a reduction of elapsed
//     time for a query from 6 hours to 2 hours has the same effect on
//     the metric as reducing a query from 6 seconds to 2 seconds".
//
// The tables run on the same storage and execution engine as TPC-DS, so
// comparisons isolate the workload design rather than the
// implementation.
package tpchlite

import (
	"fmt"
	"math"
	"time"

	"tpcds/internal/rng"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// Tables returns the 8-table 3NF schema (TPC-D/H lineage).
func Tables() []*schema.Table {
	id := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.Identifier} }
	in := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.Integer} }
	dec := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.Decimal} }
	ch := func(n string, l int) schema.Column { return schema.Column{Name: n, Type: schema.Char, Len: l} }
	dt := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.Date} }
	return []*schema.Table{
		{Name: "region", Kind: schema.Dimension, Columns: []schema.Column{
			id("r_regionkey"), ch("r_name", 25)}, PrimaryKey: []string{"r_regionkey"}},
		{Name: "nation", Kind: schema.Dimension, Columns: []schema.Column{
			id("n_nationkey"), ch("n_name", 25), id("n_regionkey")},
			PrimaryKey:  []string{"n_nationkey"},
			ForeignKeys: []schema.ForeignKey{{Column: "n_regionkey", Ref: "region"}}},
		{Name: "supplier", Kind: schema.Dimension, Columns: []schema.Column{
			id("s_suppkey"), ch("s_name", 25), id("s_nationkey"), dec("s_acctbal")},
			PrimaryKey:  []string{"s_suppkey"},
			ForeignKeys: []schema.ForeignKey{{Column: "s_nationkey", Ref: "nation"}}},
		{Name: "part", Kind: schema.Dimension, Columns: []schema.Column{
			id("p_partkey"), ch("p_name", 55), ch("p_brand", 10), ch("p_type", 25),
			in("p_size"), dec("p_retailprice")}, PrimaryKey: []string{"p_partkey"}},
		{Name: "partsupp", Kind: schema.Fact, Columns: []schema.Column{
			id("ps_partkey"), id("ps_suppkey"), in("ps_availqty"), dec("ps_supplycost")},
			PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
			ForeignKeys: []schema.ForeignKey{
				{Column: "ps_partkey", Ref: "part"}, {Column: "ps_suppkey", Ref: "supplier"}}},
		{Name: "customer", Kind: schema.Dimension, Columns: []schema.Column{
			id("c_custkey"), ch("c_name", 25), id("c_nationkey"), dec("c_acctbal"),
			ch("c_mktsegment", 10)},
			PrimaryKey:  []string{"c_custkey"},
			ForeignKeys: []schema.ForeignKey{{Column: "c_nationkey", Ref: "nation"}}},
		{Name: "orders", Kind: schema.Fact, Columns: []schema.Column{
			id("o_orderkey"), id("o_custkey"), ch("o_orderstatus", 1), dec("o_totalprice"),
			dt("o_orderdate"), in("o_shippriority")},
			PrimaryKey:  []string{"o_orderkey"},
			ForeignKeys: []schema.ForeignKey{{Column: "o_custkey", Ref: "customer"}}},
		{Name: "lineitem", Kind: schema.Fact, Columns: []schema.Column{
			id("l_orderkey"), id("l_partkey"), id("l_suppkey"), in("l_linenumber"),
			in("l_quantity"), dec("l_extendedprice"), dec("l_discount"), dec("l_tax"),
			ch("l_returnflag", 1), ch("l_linestatus", 1), dt("l_shipdate")},
			PrimaryKey: []string{"l_orderkey", "l_linenumber"},
			ForeignKeys: []schema.ForeignKey{
				{Column: "l_orderkey", Ref: "orders"}, {Column: "l_partkey", Ref: "part"},
				{Column: "l_suppkey", Ref: "supplier"}}},
	}
}

// Rows returns the cardinality at scale factor sf. Every main table is
// LINEAR in sf — the scaling model the paper criticizes: at SF 100,000
// this models 20 billion parts and 15 billion customers.
func Rows(table string, sf float64) int64 {
	perSF := map[string]float64{
		"supplier": 10_000,
		"part":     200_000,
		"partsupp": 800_000,
		"customer": 150_000,
		"orders":   1_500_000,
		"lineitem": 6_000_000,
	}
	switch table {
	case "region":
		return 5
	case "nation":
		return 25
	}
	r, ok := perSF[table]
	if !ok {
		panic(fmt.Sprintf("tpchlite: unknown table %q", table))
	}
	n := int64(math.Round(r * sf))
	if n < 10 {
		n = 10
	}
	return n
}

// Generate builds the database with uniform, un-skewed data — no
// seasonality, no frequent-name skew, no comparability zones.
func Generate(sf float64, seed uint64) *storage.DB {
	if sf <= 0 {
		panic("tpchlite: non-positive scale factor")
	}
	db := storage.NewDB()
	defs := map[string]*schema.Table{}
	for _, d := range Tables() {
		defs[d.Name] = d
	}
	stream := func(table string) *rng.Stream {
		return rng.NewStream(rng.ColumnSeed(seed, "tpchlite-"+table, "row"))
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	types := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	epoch := storage.DaysFromYMD(1992, 1, 1)
	span := storage.DaysFromYMD(1998, 12, 1) - epoch

	region := db.Create(defs["region"])
	for i := int64(1); i <= Rows("region", sf); i++ {
		region.Append([]storage.Value{storage.Int(i), storage.Str(fmt.Sprintf("REGION#%d", i))})
	}
	nation := db.Create(defs["nation"])
	for i := int64(1); i <= Rows("nation", sf); i++ {
		nation.Append([]storage.Value{
			storage.Int(i), storage.Str(fmt.Sprintf("NATION#%d", i)),
			storage.Int((i-1)%Rows("region", sf) + 1)})
	}
	supplier := db.Create(defs["supplier"])
	s := stream("supplier")
	for i := int64(1); i <= Rows("supplier", sf); i++ {
		supplier.Append([]storage.Value{
			storage.Int(i), storage.Str(fmt.Sprintf("Supplier#%09d", i)),
			storage.Int(1 + s.Int63n(25)), storage.Float(float64(s.Range(-99999, 999999)) / 100)})
	}
	part := db.Create(defs["part"])
	s = stream("part")
	for i := int64(1); i <= Rows("part", sf); i++ {
		part.Append([]storage.Value{
			storage.Int(i), storage.Str(fmt.Sprintf("part %d", i)),
			storage.Str(fmt.Sprintf("Brand#%d%d", 1+s.Intn(5), 1+s.Intn(5))),
			storage.Str(types[s.Intn(len(types))]),
			storage.Int(s.Range(1, 50)), storage.Float(float64(90000+i%20000) / 100)})
	}
	partsupp := db.Create(defs["partsupp"])
	s = stream("partsupp")
	nPart, nSupp := Rows("part", sf), Rows("supplier", sf)
	for i := int64(0); i < Rows("partsupp", sf); i++ {
		partsupp.Append([]storage.Value{
			storage.Int(i%nPart + 1), storage.Int((i/nPart)%nSupp + 1),
			storage.Int(s.Range(1, 9999)), storage.Float(float64(s.Range(100, 100000)) / 100)})
	}
	customer := db.Create(defs["customer"])
	s = stream("customer")
	for i := int64(1); i <= Rows("customer", sf); i++ {
		customer.Append([]storage.Value{
			storage.Int(i), storage.Str(fmt.Sprintf("Customer#%09d", i)),
			storage.Int(1 + s.Int63n(25)), storage.Float(float64(s.Range(-99999, 999999)) / 100),
			storage.Str(segments[s.Intn(len(segments))])})
	}
	orders := db.Create(defs["orders"])
	s = stream("orders")
	nCust := Rows("customer", sf)
	for i := int64(1); i <= Rows("orders", sf); i++ {
		// Uniform order dates: the un-skewed distribution the paper
		// contrasts with the zoned seasonal distribution of TPC-DS.
		orders.Append([]storage.Value{
			storage.Int(i), storage.Int(1 + s.Int63n(nCust)),
			storage.Str([]string{"O", "F", "P"}[s.Intn(3)]),
			storage.Float(float64(s.Range(1000, 50000000)) / 100),
			storage.DateV(epoch + s.Int63n(span)), storage.Int(0)})
	}
	lineitem := db.Create(defs["lineitem"])
	lineitem.Grow(int(Rows("lineitem", sf)))
	s = stream("lineitem")
	nOrders := Rows("orders", sf)
	for i := int64(0); i < Rows("lineitem", sf); i++ {
		qty := s.Range(1, 50)
		price := float64(s.Range(90000, 200000)) / 100 * float64(qty)
		lineitem.Append([]storage.Value{
			storage.Int(i%nOrders + 1), storage.Int(1 + s.Int63n(nPart)),
			storage.Int(1 + s.Int63n(nSupp)), storage.Int(i / nOrders),
			storage.Int(qty), storage.Float(price),
			storage.Float(float64(s.Intn(11)) / 100), storage.Float(float64(s.Intn(9)) / 100),
			storage.Str([]string{"R", "A", "N"}[s.Intn(3)]),
			storage.Str([]string{"O", "F"}[s.Intn(2)]),
			storage.DateV(epoch + s.Int63n(span))})
	}
	return db
}

// Queries returns the fixed TPC-H-style query set: 8 known-in-advance
// queries with no substitution model. "There are relatively few distinct
// queries in TPC-H, and since they are known before benchmark execution,
// engineers can tune optimizers and execution paths" (§1).
func Queries() []string {
	return []string{
		// Q1-style pricing summary.
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity) sum_qty,
		   SUM(l_extendedprice) sum_base, AVG(l_discount) avg_disc, COUNT(*) cnt
		 FROM lineitem WHERE l_shipdate <= '1998-09-01'
		 GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
		// Q3-style shipping priority.
		`SELECT o_orderkey, SUM(l_extendedprice * (1 - l_discount)) revenue, o_orderdate
		 FROM customer, orders, lineitem
		 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		   AND o_orderdate < '1995-03-15'
		 GROUP BY o_orderkey, o_orderdate ORDER BY revenue DESC, o_orderdate LIMIT 10`,
		// Q5-style local supplier volume.
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) revenue
		 FROM customer, orders, lineitem, supplier, nation
		 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		   AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey
		   AND c_nationkey = s_nationkey
		   AND o_orderdate BETWEEN '1994-01-01' AND '1994-12-31'
		 GROUP BY n_name ORDER BY revenue DESC`,
		// Q6-style forecast revenue change.
		`SELECT SUM(l_extendedprice * l_discount) revenue
		 FROM lineitem
		 WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31'
		   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,
		// Q10-style returned item reporting.
		`SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) revenue
		 FROM customer, orders, lineitem
		 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_returnflag = 'R'
		 GROUP BY c_custkey, c_name ORDER BY revenue DESC LIMIT 20`,
		// Q12-style shipping mode count.
		`SELECT l_linestatus, COUNT(*) cnt FROM lineitem, orders
		 WHERE l_orderkey = o_orderkey AND o_orderstatus = 'F'
		 GROUP BY l_linestatus ORDER BY l_linestatus`,
		// Q14-style promotion effect.
		`SELECT SUM(CASE WHEN p_type = 'PROMO' THEN l_extendedprice ELSE 0 END) * 100 /
		        SUM(l_extendedprice) promo_share
		 FROM lineitem, part WHERE l_partkey = p_partkey`,
		// Q18-style large volume customer.
		`SELECT o_orderkey, SUM(l_quantity) total_qty FROM orders, lineitem
		 WHERE o_orderkey = l_orderkey
		 GROUP BY o_orderkey HAVING SUM(l_quantity) > 150
		 ORDER BY total_qty DESC LIMIT 20`,
	}
}

// PowerMetric is the previous-generation geometric-mean power metric:
// 3600 * SF / geomean(times in seconds). Its weakness, per §5.3: a query
// going from 6h to 2h moves the metric exactly as much as one going
// from 6s to 2s.
func PowerMetric(sf float64, times []time.Duration) float64 {
	if len(times) == 0 || sf <= 0 {
		return 0
	}
	var logSum float64
	for _, t := range times {
		s := t.Seconds()
		if s <= 0 {
			s = 1e-9
		}
		logSum += math.Log(s)
	}
	geomean := math.Exp(logSum / float64(len(times)))
	return sf * 3600 / geomean
}
