package index

import "sort"

// HashIndex maps int64 keys to the row ids carrying them — the engine's
// conventional index for key lookups and index-driven joins (§2.1).
type HashIndex struct {
	rows map[int64][]int32
	n    int
}

// BuildHashIndex indexes the column given as parallel value/null slices.
func BuildHashIndex(vals []int64, nulls []bool) *HashIndex {
	ix := &HashIndex{rows: make(map[int64][]int32, len(vals)/4+1), n: len(vals)}
	for i, v := range vals {
		if nulls[i] {
			continue
		}
		ix.rows[v] = append(ix.rows[v], int32(i))
	}
	return ix
}

// NumRows returns the indexed row count.
func (ix *HashIndex) NumRows() int { return ix.n }

// DistinctKeys returns the number of distinct non-null keys.
func (ix *HashIndex) DistinctKeys() int { return len(ix.rows) }

// Lookup returns the row ids for key (shared slice; do not mutate).
func (ix *HashIndex) Lookup(key int64) []int32 { return ix.rows[key] }

// First returns the first row id for key, or -1 if absent. Unique-key
// lookups (surrogate key probes) use this.
func (ix *HashIndex) First(key int64) int32 {
	if r := ix.rows[key]; len(r) > 0 {
		return r[0]
	}
	return -1
}

// Add appends a row id for key (incremental maintenance during data
// maintenance inserts).
func (ix *HashIndex) Add(key int64, row int32) {
	ix.rows[key] = append(ix.rows[key], row)
	if int(row) >= ix.n {
		ix.n = int(row) + 1
	}
}

// SortedIndex is an order-preserving index over an int64 column: a
// (key, rowid) list sorted by key, answering range queries with binary
// search. Date-range predicates and the logically clustered delete of
// the data-maintenance workload use it.
type SortedIndex struct {
	keys []int64
	rows []int32
	n    int
}

// BuildSortedIndex indexes the column given as parallel value/null
// slices. NULL keys are omitted.
func BuildSortedIndex(vals []int64, nulls []bool) *SortedIndex {
	ix := &SortedIndex{n: len(vals)}
	for i, v := range vals {
		if nulls[i] {
			continue
		}
		ix.keys = append(ix.keys, v)
		ix.rows = append(ix.rows, int32(i))
	}
	sort.Sort(byKey{ix})
	return ix
}

type byKey struct{ ix *SortedIndex }

func (b byKey) Len() int { return len(b.ix.keys) }
func (b byKey) Less(i, j int) bool {
	if b.ix.keys[i] != b.ix.keys[j] {
		return b.ix.keys[i] < b.ix.keys[j]
	}
	return b.ix.rows[i] < b.ix.rows[j]
}
func (b byKey) Swap(i, j int) {
	b.ix.keys[i], b.ix.keys[j] = b.ix.keys[j], b.ix.keys[i]
	b.ix.rows[i], b.ix.rows[j] = b.ix.rows[j], b.ix.rows[i]
}

// NumRows returns the indexed row count.
func (ix *SortedIndex) NumRows() int { return ix.n }

// Range returns the row ids whose key is in [lo, hi], in key order.
func (ix *SortedIndex) Range(lo, hi int64) []int32 {
	if hi < lo {
		return nil
	}
	start := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= lo })
	end := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] > hi })
	out := make([]int32, end-start)
	copy(out, ix.rows[start:end])
	return out
}

// RangeBitmap returns the rows whose key is in [lo, hi] as a bitmap
// sized to the indexed table, ready for bitmap merges.
func (ix *SortedIndex) RangeBitmap(lo, hi int64) *Bitmap {
	bm := NewBitmap(ix.n)
	for _, r := range ix.Range(lo, hi) {
		bm.Set(int(r))
	}
	return bm
}

// MinMax returns the smallest and largest indexed keys. ok is false for
// an empty index.
func (ix *SortedIndex) MinMax() (min, max int64, ok bool) {
	if len(ix.keys) == 0 {
		return 0, 0, false
	}
	return ix.keys[0], ix.keys[len(ix.keys)-1], true
}
