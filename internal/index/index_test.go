package index

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if !b.Get(64) || b.Get(63) {
		t.Error("Get broken across word boundary")
	}
	if got := b.Rows(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("Rows = %v", got)
	}
}

func TestBitmapAndOr(t *testing.T) {
	a := NewBitmap(100)
	b := NewBitmap(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(99)
	b.Set(2)
	ab := a.Clone()
	ab.And(b)
	if got := ab.Rows(); len(got) != 2 || got[0] != 50 || got[1] != 99 {
		t.Errorf("And rows = %v", got)
	}
	ob := a.Clone()
	ob.Or(b)
	if ob.Count() != 4 {
		t.Errorf("Or count = %d, want 4", ob.Count())
	}
	// a itself unchanged by Clone-based ops.
	if a.Count() != 3 {
		t.Error("Clone did not isolate mutation")
	}
}

func TestBitmapCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched capacity did not panic")
		}
	}()
	NewBitmap(10).And(NewBitmap(11))
}

func TestBitmapFillAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := NewBitmap(n)
		b.FillAll()
		if b.Count() != n {
			t.Errorf("FillAll(%d).Count = %d", n, b.Count())
		}
	}
}

func TestBitmapForEachEarlyStop(t *testing.T) {
	b := NewBitmap(100)
	for i := 0; i < 100; i += 10 {
		b.Set(i)
	}
	var visited int
	b.ForEach(func(i int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("ForEach visited %d after early stop, want 3", visited)
	}
}

func TestBitmapIndex(t *testing.T) {
	vals := []int64{5, 7, 5, 9, 7, 5}
	nulls := []bool{false, false, false, false, false, true}
	ix := BuildBitmapIndex(vals, nulls)
	if ix.NumRows() != 6 {
		t.Errorf("NumRows = %d", ix.NumRows())
	}
	if ix.DistinctKeys() != 3 {
		t.Errorf("DistinctKeys = %d, want 3 (null not counted)", ix.DistinctKeys())
	}
	if got := ix.Lookup(5).Rows(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Lookup(5) = %v (row 5 is NULL and must be excluded)", got)
	}
	if ix.Lookup(404) != nil {
		t.Error("Lookup of absent key should be nil")
	}
	union := ix.UnionOf([]int64{5, 9, 404})
	if got := union.Rows(); len(got) != 3 {
		t.Errorf("UnionOf = %v", got)
	}
}

func TestHashIndex(t *testing.T) {
	vals := []int64{1, 2, 1, 3}
	nulls := []bool{false, false, false, true}
	ix := BuildHashIndex(vals, nulls)
	if ix.DistinctKeys() != 2 {
		t.Errorf("DistinctKeys = %d, want 2", ix.DistinctKeys())
	}
	if got := ix.Lookup(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Lookup(1) = %v", got)
	}
	if ix.First(2) != 1 || ix.First(404) != -1 {
		t.Error("First broken")
	}
	ix.Add(9, 10)
	if ix.First(9) != 10 {
		t.Error("Add broken")
	}
	if ix.NumRows() != 11 {
		t.Errorf("NumRows after Add = %d, want 11", ix.NumRows())
	}
}

func TestSortedIndexRange(t *testing.T) {
	vals := []int64{50, 10, 30, 20, 40, 30}
	nulls := []bool{false, false, false, false, false, false}
	ix := BuildSortedIndex(vals, nulls)
	got := ix.Range(20, 40)
	// Keys 20,30,30,40 -> rows 3,2,5,4 in key order.
	want := []int32{3, 2, 5, 4}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	if len(ix.Range(100, 200)) != 0 {
		t.Error("out-of-range query should be empty")
	}
	if len(ix.Range(40, 20)) != 0 {
		t.Error("inverted range should be empty")
	}
	bm := ix.RangeBitmap(20, 40)
	if bm.Count() != 4 || !bm.Get(2) || !bm.Get(3) || !bm.Get(4) || !bm.Get(5) {
		t.Errorf("RangeBitmap rows = %v", bm.Rows())
	}
	min, max, ok := ix.MinMax()
	if !ok || min != 10 || max != 50 {
		t.Errorf("MinMax = %d,%d,%v", min, max, ok)
	}
}

func TestSortedIndexSkipsNulls(t *testing.T) {
	ix := BuildSortedIndex([]int64{1, 0, 3}, []bool{false, true, false})
	if got := ix.Range(0, 10); len(got) != 2 {
		t.Errorf("Range over null-bearing column = %v", got)
	}
	empty := BuildSortedIndex(nil, nil)
	if _, _, ok := empty.MinMax(); ok {
		t.Error("empty MinMax should report !ok")
	}
}

// Property: for any key set, the bitmap index lookup reproduces a linear
// scan.
func TestQuickBitmapIndexEquivalence(t *testing.T) {
	f := func(data []uint8, probe uint8) bool {
		vals := make([]int64, len(data))
		nulls := make([]bool, len(data))
		for i, d := range data {
			vals[i] = int64(d % 7)
		}
		ix := BuildBitmapIndex(vals, nulls)
		key := int64(probe % 7)
		var want []int
		for i, v := range vals {
			if v == key {
				want = append(want, i)
			}
		}
		bm := ix.Lookup(key)
		if bm == nil {
			return len(want) == 0
		}
		got := bm.Rows()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And/Or counts obey inclusion-exclusion.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(aa, bb []bool) bool {
		n := len(aa)
		if len(bb) < n {
			n = len(bb)
		}
		a, b := NewBitmap(n), NewBitmap(n)
		for i := 0; i < n; i++ {
			if aa[i] {
				a.Set(i)
			}
			if bb[i] {
				b.Set(i)
			}
		}
		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		return a.Count()+b.Count() == and.Count()+or.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sorted-index range equals a filter scan.
func TestQuickSortedRangeEquivalence(t *testing.T) {
	f := func(data []int16, lo, hi int16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		vals := make([]int64, len(data))
		nulls := make([]bool, len(data))
		for i, d := range data {
			vals[i] = int64(d)
		}
		ix := BuildSortedIndex(vals, nulls)
		got := ix.Range(int64(lo), int64(hi))
		seen := map[int32]bool{}
		for _, r := range got {
			seen[r] = true
		}
		count := 0
		for i, v := range vals {
			in := v >= int64(lo) && v <= int64(hi)
			if in {
				count++
			}
			if in != seen[int32(i)] {
				return false
			}
		}
		return count == len(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitmapAnd(b *testing.B) {
	x := NewBitmap(1 << 20)
	y := NewBitmap(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		x.Set(i)
	}
	for i := 0; i < 1<<20; i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := x.Clone()
		z.And(y)
	}
}
