// Package index provides the access-path substrate of the engine: hash
// indexes for key lookups and index-driven joins, bitmap indexes for the
// star-transformation execution path (§2.1: "typical executions in a
// star schema involve bitmap accesses, bitmap merges, bitmap joins"),
// and sorted indexes for date-range scans used by the logically
// clustered data-maintenance deletes (§4.2).
package index

import "math/bits"

// Bitmap is a fixed-capacity bitset over row ids.
type Bitmap struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitmap returns an empty bitmap able to hold row ids [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Set marks row id i.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Get reports whether row id i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with other in place (bitmap merge). Capacities must
// match.
func (b *Bitmap) And(other *Bitmap) {
	if b.n != other.n {
		panic("index: bitmap capacity mismatch in And")
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions b with other in place. Capacities must match.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic("index: bitmap capacity mismatch in Or")
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Clone returns a copy of b.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// FillAll sets every bit in [0, n).
func (b *Bitmap) FillAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Clear the bits beyond n in the last word.
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// ForEach calls fn for every set row id in ascending order. If fn
// returns false iteration stops.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Rows materializes the set row ids in ascending order.
func (b *Bitmap) Rows() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// BitmapIndex maps each distinct int64 key of a column to the bitmap of
// rows carrying it. Suitable for low-cardinality columns and for fact
// foreign keys joined against small dimensions (the star transformation
// probes a dimension, collects the qualifying surrogate keys, ORs their
// fact bitmaps and ANDs across dimensions).
type BitmapIndex struct {
	n    int
	bits map[int64]*Bitmap
	// nulls tracks rows whose key is NULL (never matched by joins).
	nulls *Bitmap
}

// BuildBitmapIndex indexes the column given as parallel value and null
// slices (from storage.Table.ScanInt64).
func BuildBitmapIndex(vals []int64, nulls []bool) *BitmapIndex {
	ix := &BitmapIndex{n: len(vals), bits: map[int64]*Bitmap{}, nulls: NewBitmap(len(vals))}
	for i, v := range vals {
		if nulls[i] {
			ix.nulls.Set(i)
			continue
		}
		bm := ix.bits[v]
		if bm == nil {
			bm = NewBitmap(len(vals))
			ix.bits[v] = bm
		}
		bm.Set(i)
	}
	return ix
}

// NumRows returns the indexed row count.
func (ix *BitmapIndex) NumRows() int { return ix.n }

// DistinctKeys returns the number of distinct non-null keys.
func (ix *BitmapIndex) DistinctKeys() int { return len(ix.bits) }

// Lookup returns the bitmap for one key, or nil if absent. The returned
// bitmap is shared — callers must Clone before mutating.
func (ix *BitmapIndex) Lookup(key int64) *Bitmap { return ix.bits[key] }

// UnionOf ORs the bitmaps of all given keys into a fresh bitmap — the
// "bitmap merge" step of a star transformation.
func (ix *BitmapIndex) UnionOf(keys []int64) *Bitmap {
	out := NewBitmap(ix.n)
	for _, k := range keys {
		if bm := ix.bits[k]; bm != nil {
			out.Or(bm)
		}
	}
	return out
}
