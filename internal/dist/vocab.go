package dist

// Vocabularies for the hybrid real-world data domains (§3.2: "real world
// data are used to populate each table with common data skews, such as
// seasonal sales and frequent names"). Name lists follow US census
// frequency ordering, so Gaussian index selection over them yields the
// "frequent names" skew; the geographic and merchandising lists give
// queries realistic predicates (Q20 filters i_category IN
// ('Sports','Books','Home')).

// FirstNames is ordered by real-world frequency (most common first).
var FirstNames = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Linda", "Michael",
	"Barbara", "William", "Elizabeth", "David", "Jennifer", "Richard",
	"Maria", "Charles", "Susan", "Joseph", "Margaret", "Thomas", "Dorothy",
	"Daniel", "Lisa", "Paul", "Nancy", "Mark", "Karen", "Donald", "Betty",
	"George", "Helen", "Kenneth", "Sandra", "Steven", "Donna", "Edward",
	"Carol", "Brian", "Ruth", "Ronald", "Sharon", "Anthony", "Michelle",
	"Kevin", "Laura", "Jason", "Sarah", "Matthew", "Kimberly", "Gary",
	"Deborah", "Timothy", "Jessica", "Jose", "Shirley", "Larry", "Cynthia",
	"Jeffrey", "Angela", "Frank", "Melissa", "Scott", "Brenda", "Eric",
	"Amy", "Stephen", "Anna", "Andrew", "Rebecca", "Raymond", "Virginia",
	"Gregory", "Kathleen", "Joshua", "Pamela", "Jerry", "Martha", "Dennis",
	"Debra", "Walter", "Amanda", "Patrick", "Stephanie", "Peter", "Carolyn",
	"Harold", "Christine", "Douglas", "Marie", "Henry", "Janet", "Carl",
	"Catherine", "Arthur", "Frances", "Ryan", "Ann", "Roger", "Joyce",
	"Joe", "Diane",
}

// LastNames is ordered by real-world frequency (most common first).
var LastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
	"Garcia", "Rodriguez", "Wilson", "Martinez", "Anderson", "Taylor",
	"Thomas", "Hernandez", "Moore", "Martin", "Jackson", "Thompson",
	"White", "Lopez", "Lee", "Gonzalez", "Harris", "Clark", "Lewis",
	"Robinson", "Walker", "Perez", "Hall", "Young", "Allen", "Sanchez",
	"Wright", "King", "Scott", "Green", "Baker", "Adams", "Nelson",
	"Hill", "Ramirez", "Campbell", "Mitchell", "Roberts", "Carter",
	"Phillips", "Evans", "Turner", "Torres", "Parker", "Collins",
	"Edwards", "Stewart", "Flores", "Morris", "Nguyen", "Murphy",
	"Rivera", "Cook", "Rogers", "Morgan", "Peterson", "Cooper", "Reed",
	"Bailey", "Bell", "Gomez", "Kelly", "Howard", "Ward", "Cox", "Diaz",
	"Richardson", "Wood", "Watson", "Brooks", "Bennett", "Gray", "James",
	"Reyes", "Cruz", "Hughes", "Price", "Myers", "Long", "Foster",
	"Sanders", "Ross", "Morales", "Powell", "Sullivan", "Russell",
	"Ortiz", "Jenkins", "Gutierrez", "Perry", "Butler", "Barnes", "Fisher",
}

// Salutations used for customer records.
var Salutations = []string{"Mr.", "Mrs.", "Ms.", "Miss", "Dr.", "Sir"}

// Cities, Counties and States give the geographic domains. County has a
// real-world domain of ~1800 values; per §3.1 it is *domain-scaled* down
// for small tables (e.g. only ~200 stores exist at SF 100, so stores draw
// from a scaled-down county list — see DomainScale).
var Cities = []string{
	"Fairview", "Midway", "Oak Grove", "Five Points", "Pleasant Hill",
	"Centerville", "Riverside", "Liberty", "Salem", "Union", "Greenville",
	"Franklin", "Springfield", "Clinton", "Georgetown", "Marion",
	"Greenwood", "Oakland", "Bethel", "Lakeview", "Glendale", "Arlington",
	"Jamestown", "Waterloo", "Mount Pleasant", "Ashland", "Oakdale",
	"Kingston", "Harmony", "Newport", "Sunnyside", "Plainview", "Concord",
	"Lakeside", "Farmington", "Hamilton", "Woodville", "Bridgeport",
	"Clifton", "Antioch", "Enterprise", "Florence", "Friendship",
	"Highland Park", "Hillcrest", "Hopewell", "Lincoln", "Macedonia",
	"Maple Grove", "Mount Olive", "Mount Vernon", "New Hope", "Oakwood",
	"Pine Grove", "Pleasant Valley", "Providence", "Red Hill", "Riverdale",
	"Rockwood", "Shady Grove", "Shiloh", "Spring Hill", "Spring Valley",
	"Summit", "Sulphur Springs", "Valley View", "Walnut Grove", "Wildwood",
	"Wilson", "Woodland", "Woodlawn", "Youngstown",
}

var Counties = []string{
	"Williamson County", "Walker County", "Ziebach County", "Huron County",
	"Franklin Parish", "Richland County", "Bronx County", "Orange County",
	"Jackson County", "Luce County", "Furnas County", "Pennington County",
	"San Miguel County", "Daviess County", "Barrow County", "Fairfield County",
	"Wadena County", "Dauphin County", "Levy County", "Terrell County",
	"Mobile County", "Perry County", "Dona Ana County", "Sumner County",
	"Maverick County", "Kittitas County", "Mesa County", "Lunenburg County",
	"Marshall County", "Raleigh County", "Oglethorpe County", "Hubbard County",
	"Pipestone County", "Nowata County", "Kandiyohi County", "Brown County",
	"Lea County", "Jefferson Davis Parish", "Salem County", "Gogebic County",
	"Lycoming County", "Pike County", "Crawford County", "Medina County",
	"Greene County", "Montgomery County", "Union County", "Washington County",
	"Clay County", "Madison County", "Monroe County", "Warren County",
	"Wayne County", "Marion County", "Douglas County", "Grant County",
	"Lincoln County", "Garfield County", "Sheridan County", "Custer County",
}

var States = []string{
	"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID",
	"IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS",
	"MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK",
	"OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
	"WI", "WY",
}

var Countries = []string{"United States"}

// StreetNames and StreetTypes compose addresses.
var StreetNames = []string{
	"Main", "Oak", "Park", "Maple", "Cedar", "Elm", "Washington", "Lake",
	"Hill", "Walnut", "Spring", "North", "Ridge", "Church", "Willow",
	"Mill", "Sunset", "Railroad", "Jackson", "West", "South", "Highland",
	"Johnson", "Forest", "College", "River", "Green", "Meadow", "East",
	"Chestnut", "Lakeview", "First", "Second", "Third", "Fourth", "Fifth",
	"Sixth", "Seventh", "Eighth", "Ninth", "Tenth", "Birch", "Broadway",
	"Center", "Davis", "Dogwood", "Franklin", "Hickory", "Lee", "Lincoln",
	"Locust", "Madison", "Pine", "Poplar", "Smith", "Sycamore", "Valley",
	"View", "Williams", "Wilson",
}

var StreetTypes = []string{
	"Street", "Avenue", "Boulevard", "Drive", "Lane", "Road", "Court",
	"Circle", "Way", "Parkway", "Pkwy", "Blvd", "Dr.", "Ln", "Ct.", "Cir.",
	"RD", "ST", "Ave", "Wy",
}

var LocationTypes = []string{"apartment", "condo", "single family"}

// Item merchandising hierarchy (Figure 5): each category owns its
// classes; class i_class values are unique to a category so single
// inheritance holds by construction.
var Categories = []string{
	"Sports", "Books", "Home", "Electronics", "Jewelry",
	"Men", "Women", "Music", "Children", "Shoes",
}

// ClassesByCategory maps a category to its classes (single inheritance:
// every class string appears under exactly one category).
var ClassesByCategory = map[string][]string{
	"Sports":      {"athletic shoes", "baseball", "basketball", "camping", "fishing", "fitness", "football", "golf", "guns", "hockey", "optics", "outdoor", "pools", "sailing", "tennis"},
	"Books":       {"arts", "business", "computers", "cooking", "entertainments", "fiction", "history", "home repair", "mystery", "parenting", "reference", "romance", "science", "self-help", "sports books", "travel"},
	"Home":        {"accent", "bathroom", "bedding", "blinds/shades", "curtains/drapes", "decor", "flatware", "furniture", "glassware", "kids home", "lighting", "mattresses", "paint", "rugs", "tables", "wallpaper"},
	"Electronics": {"audio", "automotive", "cameras", "camcorders", "disk drives", "dvd/vcr players", "karoke", "memory", "monitors", "musical", "personal", "portable", "scanners", "stereo", "televisions", "wireless"},
	"Jewelry":     {"birdal", "bracelets", "custom", "diamonds", "earings", "estate", "gold", "jewelry boxes", "loose stones", "mens watch", "pendants", "rings", "semi-precious", "womens watch"},
	"Men":         {"accessories men", "pants", "shirts", "sports-apparel", "sweaters men"},
	"Women":       {"dresses", "fragrances", "maternity", "swimwear", "womens apparel"},
	"Music":       {"classical", "country", "pop", "rock"},
	"Children":    {"infants", "newborn", "school-uniforms", "toddlers"},
	"Shoes":       {"athletic", "kids shoes", "mens shoes", "womens shoes"},
}

// Colors, Units, Containers and Sizes for item attributes.
var Colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream",
	"cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral",
	"forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
	"honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender",
	"lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium",
}

var Units = []string{
	"Bunch", "Bundle", "Box", "Carton", "Case", "Cup", "Dozen", "Dram",
	"Each", "Gram", "Gross", "Lb", "N/A", "Ounce", "Oz", "Pallet", "Pound",
	"Tbl", "Ton", "Tsp", "Unknown",
}

var Containers = []string{"Unknown"}

var Sizes = []string{"petite", "small", "medium", "large", "extra large", "economy", "N/A"}

// Demographics domains: the customer_demographics table is the full
// cross product of these (2 x 5 x 7 x 20 x 5 x 7 x 7 x 7 scaled =
// 1,920,800 rows in the official kit).
var Genders = []string{"M", "F"}
var MaritalStatuses = []string{"M", "S", "D", "W", "U"}
var EducationStatuses = []string{
	"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree",
	"Advanced Degree", "Unknown",
}
var CreditRatings = []string{"Low Risk", "Good", "High Risk", "Unknown"}
var BuyPotentials = []string{">10000", "5001-10000", "1001-5000", "501-1000", "0-500", "Unknown"}

// Reason descriptions for the store_returns reason dimension.
var ReasonDescs = []string{
	"Package was damaged", "Stopped working", "Did not get it on time",
	"Not the product that was ordred", "Parts missing",
	"Does not work with a product that I have", "Gift exchange",
	"Did not like the color", "Did not like the model",
	"Did not like the make", "Did not like the warranty",
	"No service location in my area", "Found a better price in a store",
	"Found a better extended warranty in a store", "Not working any more",
	"unauthoized purchase", "duplicate purchase", "its is a boy",
	"its is a girl", "reason 20", "reason 21", "reason 22", "reason 23",
	"reason 24",
}

// Ship modes: 4 types x 5 codes = the 20-row ship_mode dimension.
var ShipModeTypes = []string{"EXPRESS", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"}
var ShipModeCodes = []string{"AIR", "SURFACE", "SEA", "RAIL"}
var Carriers = []string{
	"UPS", "FEDEX", "AIRBORNE", "USPS", "DHL", "TBS", "ZHOU", "ZOUROS",
	"MSC", "LATVIAN", "ALLIANCE", "GREAT EASTERN", "DIAMOND", "RUPEKSA",
	"ORIENTAL", "BOXBUNDLES", "GERMA", "HARMSTORF", "PRIVATECARRIER", "BARIAN",
}

// Words used for Gaussian word selection in synthesized text (item
// descriptions, market descriptions, promotion details).
var Words = []string{
	"ability", "able", "about", "above", "accept", "according", "account",
	"across", "action", "activity", "actually", "address", "administration",
	"admit", "adult", "affect", "after", "again", "against", "agency",
	"agent", "agree", "agreement", "ahead", "allow", "almost", "alone",
	"along", "already", "although", "always", "among", "amount", "analysis",
	"animal", "another", "answer", "anyone", "anything", "appear", "apply",
	"approach", "area", "argue", "around", "arrive", "article", "artist",
	"assume", "attack", "attention", "attorney", "audience", "author",
	"authority", "available", "avoid", "away", "baby", "back", "ball",
	"bank", "base", "beat", "beautiful", "because", "become", "before",
	"begin", "behavior", "behind", "believe", "benefit", "best", "better",
	"between", "beyond", "bill", "billion", "birth", "bit", "blood",
	"blue", "board", "body", "book", "born", "both", "box", "break",
	"bring", "brother", "budget", "build", "building", "business", "call",
	"camera", "campaign", "cancer", "candidate",
}

// DomainScale returns how many values of a real-world domain of size
// domainSize should be used for a table with rowCount rows (§3.1: "the
// domain for county is approximately 1800; at scale factor 100 there
// exist only about 200 stores — hence the county domain had to be scaled
// down"). The scaled domain is at most the full domain and at least 1,
// targeting roughly one domain value per 1-2 rows for small tables.
func DomainScale(domainSize int, rowCount int64) int {
	if domainSize <= 0 {
		panic("dist: non-positive domain size")
	}
	n := int64(domainSize)
	if rowCount < n {
		n = rowCount
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}
