// Package dist implements the data domains of the TPC-DS generator
// (paper §3.2): hybrid synthetic / real-world distributions, most notably
// the store-sales date distribution of Figure 2, which mimics the US
// Census monthly retail series with three *comparability zones*:
//
//	Zone 1: January–July    (low sales likelihood)
//	Zone 2: August–October  (medium likelihood)
//	Zone 3: November–December (high likelihood)
//
// Within a zone every domain value occurs with identical likelihood; the
// query generator only substitutes values from within a single zone, so
// every substitution leaves the number of qualifying rows and the join
// key distributions nearly identical — the four comparability rules the
// paper lists in §3.2.
package dist

import "tpcds/internal/rng"

// Zone identifies one of the three comparability zones of Figure 2.
type Zone int

const (
	// ZoneLow is January through July.
	ZoneLow Zone = iota + 1
	// ZoneMedium is August through October.
	ZoneMedium
	// ZoneHigh is November and December (holiday season).
	ZoneHigh
)

func (z Zone) String() string {
	switch z {
	case ZoneLow:
		return "low (Jan-Jul)"
	case ZoneMedium:
		return "medium (Aug-Oct)"
	case ZoneHigh:
		return "high (Nov-Dec)"
	default:
		return "invalid"
	}
}

// Months returns the 1-based calendar months belonging to the zone.
func (z Zone) Months() []int {
	switch z {
	case ZoneLow:
		return []int{1, 2, 3, 4, 5, 6, 7}
	case ZoneMedium:
		return []int{8, 9, 10}
	case ZoneHigh:
		return []int{11, 12}
	default:
		return nil
	}
}

// ZoneOfMonth returns the comparability zone containing the 1-based
// calendar month. It panics on months outside [1,12].
func ZoneOfMonth(month int) Zone {
	switch {
	case month >= 1 && month <= 7:
		return ZoneLow
	case month >= 8 && month <= 10:
		return ZoneMedium
	case month >= 11 && month <= 12:
		return ZoneHigh
	default:
		panic("dist: month out of range")
	}
}

// CensusMonthlyWeights is the calibration series behind Figure 2: the US
// Census Bureau's unadjusted 2001 monthly retail sales for department
// stores (reference [12] of the paper), in millions of dollars. The
// original URL is offline; the series below reproduces its well-known
// shape — flat spring/summer, a back-to-school bump, and the
// November/December holiday peak (December roughly 2.5x a spring month).
var CensusMonthlyWeights = [12]float64{
	4754,  // Jan
	5481,  // Feb
	6210,  // Mar
	6217,  // Apr
	6930,  // May
	6347,  // Jun
	6102,  // Jul
	7243,  // Aug
	6517,  // Sep
	6921,  // Oct
	8743,  // Nov
	13913, // Dec
}

// ZoneWeights returns the per-month TPC-DS sales weights (the square
// series of Figure 2): within each comparability zone the weight is the
// mean of the census weights of that zone's months, making all domain
// values inside a zone equally likely while preserving the census
// low/medium/high ordering across zones.
func ZoneWeights() [12]float64 {
	var out [12]float64
	for _, z := range []Zone{ZoneLow, ZoneMedium, ZoneHigh} {
		months := z.Months()
		var sum float64
		for _, m := range months {
			sum += CensusMonthlyWeights[m-1]
		}
		mean := sum / float64(len(months))
		for _, m := range months {
			out[m-1] = mean
		}
	}
	return out
}

// MonthWeight returns the TPC-DS sales weight of the 1-based month,
// normalized so the twelve weights sum to 1.
func MonthWeight(month int) float64 {
	w := ZoneWeights()
	var total float64
	for _, v := range w {
		total += v
	}
	return w[month-1] / total
}

// PickSalesMonth draws a 1-based calendar month from the zoned TPC-DS
// distribution. Fact-table generation uses this to give sales dates the
// Figure 2 seasonality.
func PickSalesMonth(s *rng.Stream) int {
	w := ZoneWeights()
	return s.PickWeighted(w[:]) + 1
}

// PickMonthInZone draws a month uniformly from within one comparability
// zone. The query generator uses this so that all substitutions of a
// date predicate stay comparable (identical qualifying-row counts).
func PickMonthInZone(s *rng.Stream, z Zone) int {
	months := z.Months()
	return months[s.Intn(len(months))]
}

// SyntheticSalesDay draws a day-of-year from the purely synthetic
// distribution of Figure 3: a Normal with mean 200 and standard
// deviation 50, truncated to [1, 365]. The paper presents this as the
// plausible-but-unsuitable alternative to comparability zones (it makes
// bind-variable substitution incomparable); the ablation benchmark
// contrasts the two.
func SyntheticSalesDay(s *rng.Stream) int {
	for {
		d := int(s.Norm(200, 50) + 0.5)
		if d >= 1 && d <= 365 {
			return d
		}
	}
}

// DayOfYearToMonth converts a 1-based day of a non-leap year to its
// 1-based calendar month.
func DayOfYearToMonth(day int) int {
	if day < 1 || day > 365 {
		panic("dist: day of year out of range")
	}
	cum := [12]int{31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365}
	for m, c := range cum {
		if day <= c {
			return m + 1
		}
	}
	panic("dist: unreachable")
}

// DaysInMonth returns the day count of the 1-based month in a non-leap
// year (the generator's sales calendar uses non-leap years uniformly so
// domain sizes stay identical across years, a comparability requirement).
func DaysInMonth(month int) int {
	days := [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	return days[month-1]
}
