package dist

import (
	"math"
	"testing"
	"testing/quick"

	"tpcds/internal/rng"
)

// TestComparabilityZones verifies the Figure 2 zone construction: three
// zones covering all twelve months, ordered low < medium < high, with
// identical likelihood for every month inside a zone.
func TestComparabilityZones(t *testing.T) {
	covered := map[int]Zone{}
	for _, z := range []Zone{ZoneLow, ZoneMedium, ZoneHigh} {
		for _, m := range z.Months() {
			if prev, dup := covered[m]; dup {
				t.Errorf("month %d in both %v and %v", m, prev, z)
			}
			covered[m] = z
		}
	}
	if len(covered) != 12 {
		t.Fatalf("zones cover %d months, want 12", len(covered))
	}
	w := ZoneWeights()
	if !(w[0] < w[7] && w[7] < w[10]) {
		t.Errorf("zone weights not ordered low<medium<high: %v %v %v", w[0], w[7], w[10])
	}
	// Uniform within zone.
	for _, z := range []Zone{ZoneLow, ZoneMedium, ZoneHigh} {
		months := z.Months()
		for _, m := range months[1:] {
			if w[m-1] != w[months[0]-1] {
				t.Errorf("zone %v not uniform: month %d weight %v vs %v", z, m, w[m-1], w[months[0]-1])
			}
		}
	}
}

func TestZoneOfMonth(t *testing.T) {
	for m := 1; m <= 7; m++ {
		if ZoneOfMonth(m) != ZoneLow {
			t.Errorf("month %d should be ZoneLow", m)
		}
	}
	for m := 8; m <= 10; m++ {
		if ZoneOfMonth(m) != ZoneMedium {
			t.Errorf("month %d should be ZoneMedium", m)
		}
	}
	for m := 11; m <= 12; m++ {
		if ZoneOfMonth(m) != ZoneHigh {
			t.Errorf("month %d should be ZoneHigh", m)
		}
	}
}

func TestZoneOfMonthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ZoneOfMonth(13) did not panic")
		}
	}()
	ZoneOfMonth(13)
}

// TestFigure2Shape checks the census calibration series has the
// department-store shape: December is the yearly peak at roughly 2-3x a
// typical spring month, November is second.
func TestFigure2Shape(t *testing.T) {
	dec, nov := CensusMonthlyWeights[11], CensusMonthlyWeights[10]
	for m := 0; m < 10; m++ {
		if CensusMonthlyWeights[m] >= nov {
			t.Errorf("census month %d weight %.0f >= November %.0f", m+1, CensusMonthlyWeights[m], nov)
		}
	}
	if nov >= dec {
		t.Error("November should be below December")
	}
	ratio := dec / CensusMonthlyWeights[0]
	if ratio < 2 || ratio > 3.5 {
		t.Errorf("December/January ratio %.2f, want holiday peak 2-3.5x", ratio)
	}
}

// TestZoneApproximationError: the TPC-DS square series should track the
// census diamond series within ~35% per month (the price of uniformity
// within zones, visible in Figure 2).
func TestZoneApproximationError(t *testing.T) {
	zw := ZoneWeights()
	var censusTotal, zoneTotal float64
	for m := 0; m < 12; m++ {
		censusTotal += CensusMonthlyWeights[m]
		zoneTotal += zw[m]
	}
	for m := 0; m < 12; m++ {
		c := CensusMonthlyWeights[m] / censusTotal
		z := zw[m] / zoneTotal
		if rel := math.Abs(z-c) / c; rel > 0.35 {
			t.Errorf("month %d: zone approximation off by %.0f%%", m+1, rel*100)
		}
	}
}

func TestMonthWeightNormalized(t *testing.T) {
	var sum float64
	for m := 1; m <= 12; m++ {
		sum += MonthWeight(m)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("month weights sum to %v, want 1", sum)
	}
}

// TestPickSalesMonthDistribution draws a large sample and verifies the
// empirical frequencies follow the zoned weights: December >> June, and
// months within a zone are statistically indistinguishable.
func TestPickSalesMonthDistribution(t *testing.T) {
	s := rng.NewStream(1)
	counts := make([]int, 13)
	const n = 240000
	for i := 0; i < n; i++ {
		counts[PickSalesMonth(s)]++
	}
	if counts[12] < counts[6]*3/2 {
		t.Errorf("December count %d not clearly above June %d", counts[12], counts[6])
	}
	// Months within the low zone should be within 10% of each other.
	for m := 2; m <= 7; m++ {
		r := float64(counts[m]) / float64(counts[1])
		if r < 0.9 || r > 1.1 {
			t.Errorf("low-zone month %d frequency ratio %.2f vs January", m, r)
		}
	}
}

// TestPickMonthInZoneStaysInZone is the comparability guarantee the
// query generator depends on.
func TestPickMonthInZoneStaysInZone(t *testing.T) {
	s := rng.NewStream(2)
	for _, z := range []Zone{ZoneLow, ZoneMedium, ZoneHigh} {
		for i := 0; i < 1000; i++ {
			m := PickMonthInZone(s, z)
			if ZoneOfMonth(m) != z {
				t.Fatalf("PickMonthInZone(%v) returned month %d outside the zone", z, m)
			}
		}
	}
}

// TestFigure3SyntheticDistribution: day-of-year ~ N(200, 50) truncated
// to [1, 365], peaking near day 200 (week 28, as the paper notes).
func TestFigure3SyntheticDistribution(t *testing.T) {
	s := rng.NewStream(3)
	const n = 100000
	var sum float64
	weekCounts := make([]int, 54)
	for i := 0; i < n; i++ {
		d := SyntheticSalesDay(s)
		if d < 1 || d > 365 {
			t.Fatalf("day %d out of range", d)
		}
		sum += float64(d)
		weekCounts[(d-1)/7+1]++
	}
	if mean := sum / n; math.Abs(mean-200) > 2 {
		t.Errorf("synthetic day mean %.1f, want ~200", mean)
	}
	peak := 1
	for w := 1; w <= 53; w++ {
		if weekCounts[w] > weekCounts[peak] {
			peak = w
		}
	}
	if peak < 27 || peak > 30 {
		t.Errorf("synthetic sales peak in week %d, paper says week 28", peak)
	}
}

func TestDayOfYearToMonth(t *testing.T) {
	cases := map[int]int{1: 1, 31: 1, 32: 2, 59: 2, 60: 3, 200: 7, 365: 12}
	for day, want := range cases {
		if got := DayOfYearToMonth(day); got != want {
			t.Errorf("DayOfYearToMonth(%d) = %d, want %d", day, got, want)
		}
	}
}

func TestDaysInMonthTotals365(t *testing.T) {
	var total int
	for m := 1; m <= 12; m++ {
		total += DaysInMonth(m)
	}
	if total != 365 {
		t.Errorf("days in year = %d, want 365", total)
	}
}

// TestItemHierarchySingleInheritance (Figure 5): every class belongs to
// exactly one category.
func TestItemHierarchySingleInheritance(t *testing.T) {
	owner := map[string]string{}
	for cat, classes := range ClassesByCategory {
		if len(classes) == 0 {
			t.Errorf("category %s has no classes", cat)
		}
		for _, cl := range classes {
			if prev, dup := owner[cl]; dup {
				t.Errorf("class %q under both %q and %q", cl, prev, cat)
			}
			owner[cl] = cat
		}
	}
	for _, cat := range Categories {
		if _, ok := ClassesByCategory[cat]; !ok {
			t.Errorf("category %s missing classes", cat)
		}
	}
	if len(ClassesByCategory) != len(Categories) {
		t.Errorf("ClassesByCategory has %d categories, want %d", len(ClassesByCategory), len(Categories))
	}
}

func TestQ20CategoriesPresent(t *testing.T) {
	// Query 20 (Figure 7) filters on these categories; they must exist.
	want := map[string]bool{"Sports": true, "Books": true, "Home": true}
	for _, c := range Categories {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("categories missing for Query 20: %v", want)
	}
}

func TestVocabulariesNonEmpty(t *testing.T) {
	lists := map[string]int{
		"FirstNames": len(FirstNames), "LastNames": len(LastNames),
		"Cities": len(Cities), "Counties": len(Counties), "States": len(States),
		"StreetNames": len(StreetNames), "StreetTypes": len(StreetTypes),
		"Colors": len(Colors), "Units": len(Units), "Sizes": len(Sizes),
		"ReasonDescs": len(ReasonDescs), "Words": len(Words),
		"EducationStatuses": len(EducationStatuses), "CreditRatings": len(CreditRatings),
		"BuyPotentials": len(BuyPotentials), "Salutations": len(Salutations),
	}
	for name, n := range lists {
		if n == 0 {
			t.Errorf("vocabulary %s is empty", name)
		}
	}
	if len(States) != 50 {
		t.Errorf("States has %d entries, want 50", len(States))
	}
	if len(ShipModeTypes)*len(ShipModeCodes) != 20 {
		t.Errorf("ship mode cross product = %d, want 20", len(ShipModeTypes)*len(ShipModeCodes))
	}
}

func TestDomainScale(t *testing.T) {
	// §3.1's example: ~1800 counties scaled down for 200 stores.
	if got := DomainScale(1800, 200); got != 200 {
		t.Errorf("DomainScale(1800, 200) = %d, want 200", got)
	}
	if got := DomainScale(50, 1_000_000); got != 50 {
		t.Errorf("DomainScale(50, 1M) = %d, want full domain 50", got)
	}
	if got := DomainScale(100, 0); got != 1 {
		t.Errorf("DomainScale floor broken: %d", got)
	}
}

// Property: DomainScale never exceeds the domain or drops below 1.
func TestQuickDomainScaleBounds(t *testing.T) {
	f := func(domain uint16, rows uint32) bool {
		d := int(domain%5000) + 1
		got := DomainScale(d, int64(rows))
		return got >= 1 && got <= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
