package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins a CPU profile and returns a stop function that
// ends it and additionally writes a heap profile — cpu.pprof and
// heap.pprof under dir (created if missing). The heap profile is taken
// after a GC so it reflects live data, not garbage awaiting collection.
func StartProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		err = fmt.Errorf("obs: cpu profile: %w", err)
		if cerr := cpu.Close(); cerr != nil {
			err = fmt.Errorf("%w (close: %v)", err, cerr)
		}
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			err = fmt.Errorf("obs: heap profile: %w", err)
			if cerr := heap.Close(); cerr != nil {
				err = fmt.Errorf("%w (close: %v)", err, cerr)
			}
			return err
		}
		if err := heap.Close(); err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		return nil
	}, nil
}
