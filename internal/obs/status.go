package obs

import "context"

// QueryStatus is the engine-facing half of an in-flight query registry:
// the driver registers a query, puts the status handle in the query
// context, and the engine reports coarse progress through it. The
// interface lives here (not in driver) so exec depends only on obs and
// the diagnostics server can consume registries from any component.
//
// Implementations must be safe for concurrent use: the engine's
// coordinator goroutine writes while diagnostics readers snapshot. The
// engine only passes phase strings that are compile-time constants, so
// a correct implementation adds no allocation to the query path.
type QueryStatus interface {
	// SetPhase records the current execution phase (parse, bind, join,
	// aggregate, project, sort, ...).
	SetPhase(phase string)
	// SetRows records the number of rows produced so far (the output
	// row count of the most recently completed operator).
	SetRows(n int64)
}

// ActiveQuery is one in-flight query as exported by a diagnostics
// snapshot: identity, progress, and elapsed time. Plain data, safe to
// serialize.
type ActiveQuery struct {
	ID       uint64 `json:"id"`
	Run      int    `json:"run,omitempty"`
	Stream   int    `json:"stream"`
	Template int    `json:"template"`
	Phase    string `json:"phase"`
	Rows     int64  `json:"rows"`
	// ElapsedNs is the time since the query entered execution, as of
	// the snapshot.
	ElapsedNs int64 `json:"elapsed_ns"`
}

// QuerySource produces point-in-time snapshots of in-flight queries.
// The driver's inflight registry implements it; debugd serves it.
// Snapshots must be deterministic given the same set of in-flight
// queries (sorted by ID).
type QuerySource interface {
	ActiveQueries() []ActiveQuery
}

// statusKey is the private context key for query-status propagation.
type statusKey struct{}

// ContextWithStatus returns ctx carrying st, so the driver's in-flight
// registry entry reaches the engine without widening any signature. A
// nil status returns ctx unchanged.
func ContextWithStatus(ctx context.Context, st QueryStatus) context.Context {
	if st == nil {
		return ctx
	}
	return context.WithValue(ctx, statusKey{}, st)
}

// StatusFromContext returns the query status carried by ctx, or nil.
func StatusFromContext(ctx context.Context) QueryStatus {
	if ctx == nil {
		return nil
	}
	st, _ := ctx.Value(statusKey{}).(QueryStatus)
	return st
}
