package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentUpdates hammers one counter, gauge and
// histogram from many goroutines — the shape morsel workers from
// concurrent streams produce. Run under -race (CI does) this is the
// registry's data-race proof; the totals prove no update is lost.
func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Resolve handles inside the goroutine: lookup must also be
			// goroutine-safe, returning the same instrument to everyone.
			c := reg.Counter("rows")
			h := reg.Histogram("lat_ns")
			ga := reg.Gauge("level")
			for i := 0; i < perG; i++ {
				c.Add(2)
				h.Observe(int64(i%100) * int64(time.Microsecond))
				ga.Set(int64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("rows").Value(); got != 2*goroutines*perG {
		t.Errorf("counter = %d, want %d", got, 2*goroutines*perG)
	}
	if got := reg.Histogram("lat_ns").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("level").Value(); got < 0 || got >= goroutines {
		t.Errorf("gauge = %d, want a last-written goroutine id", got)
	}
}

// TestTracerConcurrentSpans proves span creation and completion are
// goroutine-safe: many workers open and end child spans of a shared
// parent, as morsel workers do under a live operator span.
func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	parent := tr.Root("op", "exec")
	const workers = 8
	const spansPer = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := parent.ChildTID("morsel", w+1)
				sp.SetAttr("i", i)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	parent.End()
	if got := tr.Len(); got != workers*spansPer+1 {
		t.Fatalf("recorded %d spans, want %d", got, workers*spansPer+1)
	}
	seen := map[uint64]bool{}
	for _, s := range tr.Snapshot() {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestCounterShardIndexInRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		if s := shardIndex(); s < 0 || s >= counterShards {
			t.Fatalf("shard index %d out of range", s)
		}
	}
}
