package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Registry is a named collection of counters, gauges and histograms.
// Lookup (Counter/Gauge/Histogram) takes a mutex; updates on the
// returned handles are lock-free, so instrumented code resolves its
// handles once and hammers them from any number of goroutines. A nil
// Registry returns nil handles, which are valid disabled instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, bucketed
// by DurationBuckets. The "_ns" naming convention marks histograms of
// nanosecond observations; WriteText renders those as durations.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram(DurationBuckets)
		r.histograms[name] = h
	}
	return h
}

// counterShards spreads concurrent Add calls across cache lines.
// Morsel workers from every stream hit the same few counters; 16
// shards keep the common core counts contention-free.
const counterShards = 16

type counterShard struct {
	n atomic.Int64
	// Pad to a 64-byte cache line so neighbouring shards never
	// false-share.
	_ [56]byte
}

// Counter is a monotonically adjusted sum, sharded so concurrent
// writers rarely contend. Reads sum the shards (Value is not a point-
// in-time snapshot under concurrent writes, which is fine for
// monotonic counts).
type Counter struct {
	shards [counterShards]counterShard
}

// shardIndex picks a shard from the address of a stack byte: distinct
// goroutines have distinct stacks (allocated in multi-KB chunks), so
// concurrent writers spread across shards without any goroutine-id API
// or registration. A collision only costs contention, never
// correctness.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>13) & (counterShards - 1)
}

// Add increments the counter. Lock-free; safe from any goroutine; a
// no-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	//lint:ignore boundscheck shardIndex masks with len(c.shards)-1 inside the callee (power-of-two shard count); interprocedural return ranges are outside the intraprocedural domain
	c.shards[shardIndex()].n.Add(d)
}

// Value returns the current sum across shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Gauge is a last-write-wins level (active streams, worker count).
type Gauge struct {
	v atomic.Int64
}

// Set stores the level; a no-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the level; a no-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DurationBuckets are the fixed histogram bounds in nanoseconds:
// exponential from 1µs doubling to ~35 minutes. Fixed bounds keep
// Observe allocation-free and make histograms from different runs
// directly comparable.
var DurationBuckets = makeDurationBuckets()

func makeDurationBuckets() []int64 {
	out := make([]int64, 32)
	b := int64(time.Microsecond)
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram counts observations into fixed buckets with atomic
// count/sum/max, cheap enough for per-query and per-morsel recording.
// Quantiles are approximate (bucket upper bounds, clamped to the exact
// max); Max is exact.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Lock-free; safe from any goroutine; a
// no-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	//lint:ignore boundscheck sort.Search returns i <= len(h.bounds) and buckets is allocated with len(bounds)+1 slots; the cross-field length relation is outside the per-variable domain
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 before any Observe). Observe
// publishes count before the max CAS lands, so a concurrent reader can
// see count > 0 while max still holds its MinInt64 sentinel; that
// window reads as 0, never as the sentinel.
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	m := h.max.Load()
	if m == math.MinInt64 {
		return 0
	}
	return m
}

// Quantile returns an upper bound on the q-quantile from the bucket
// counts, clamped to the exact maximum. q is clamped into (0, 1]: NaN
// and q <= 0 report the lowest occupied bucket, and q >= 1 is exactly
// Max() — the huge-q case used to overflow the target rank and report
// the minimum instead. Zero before any observation.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	target := int64(1)
	if !math.IsNaN(q) && q > 0 {
		target = int64(math.Ceil(q * float64(n)))
		if target < 1 {
			target = 1
		}
		if target > n {
			target = n
		}
	}
	m := h.max.Load()
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum < target {
			continue
		}
		if i < len(h.bounds) && (m == math.MinInt64 || h.bounds[i] < m) {
			return h.bounds[i]
		}
		break
	}
	if m == math.MinInt64 {
		// Mid-Observe window (count visible, max CAS not yet landed):
		// the overflow bucket has no upper bound to report, so fall
		// back to the largest finite bound rather than the sentinel.
		if len(h.bounds) == 0 {
			return 0 // only the overflow bucket exists
		}
		return h.bounds[len(h.bounds)-1]
	}
	return m
}
