package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

// traceFile points TestTraceFileShape at an externally produced trace:
// the CI smoke job runs dsbench -trace and validates the artifact with
//
//	go test ./internal/obs -run TraceFileShape -tracefile out.json
var traceFile = flag.String("tracefile", "", "chrome trace JSON to validate (CI smoke hook)")

func sampleTracer() *Tracer {
	tr := NewTracer()
	root := tr.Root("run", "driver")
	s0 := root.ChildTID("stream 0", 1)
	q := s0.Child("q5")
	q.SetAttr("rows", 7)
	time.Sleep(200 * time.Microsecond)
	q.End()
	s0.End()
	root.End()
	return tr
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleTracer()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("self-produced trace fails validation: %v", err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.TraceEvents))
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Errorf("event %q: ph=%q pid=%d, want complete events in pid 1", ev.Name, ev.Ph, ev.PID)
		}
	}
	if tr.TraceEvents[0].Name != "run" {
		t.Errorf("first event %q, want the root (events sort by start)", tr.TraceEvents[0].Name)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":   "{",
		"no events":  `{"traceEvents":[]}`,
		"non-X only": `{"traceEvents":[{"name":"m","ph":"M","ts":0,"dur":0,"pid":1,"tid":0}]}`,
		"negative dur": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]}`,
		"ts regression": `{"traceEvents":[
			{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":0},
			{"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleTracer()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var prev int64 = -1
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if rec.StartNs < prev {
			t.Errorf("lines out of start order")
		}
		prev = rec.StartNs
	}
}

// TestTraceFileShape validates an externally produced trace file (the
// CI smoke artifact). Skipped unless -tracefile is set.
func TestTraceFileShape(t *testing.T) {
	if *traceFile == "" {
		t.Skip("no -tracefile given; this test validates the CI smoke artifact")
	}
	data, err := os.ReadFile(*traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
	// The smoke run drives the full driver stack: require the nested
	// run → stream → query → operator shape, not just any events.
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	cats := map[string]int{}
	names := map[string]int{}
	for _, ev := range tr.TraceEvents {
		cats[ev.Cat]++
		names[ev.Name]++
	}
	for _, want := range []string{"driver", "exec"} {
		if cats[want] == 0 {
			t.Errorf("trace has no %q spans (categories: %v)", want, cats)
		}
	}
	// Each layer of the run → stream → query → operator → morsel
	// nesting must be present. The smoke job pins -parallelism 4 so the
	// morsel layer appears regardless of the runner's core count.
	if names["benchmark"] == 0 {
		t.Error("trace has no benchmark root span")
	}
	streams, queries := 0, 0
	for name, n := range names {
		if strings.HasPrefix(name, "stream ") {
			streams += n
		}
		if strings.HasPrefix(name, "q") && !strings.HasPrefix(name, "query") {
			queries += n
		}
	}
	if streams == 0 {
		t.Error("trace has no stream spans")
	}
	if queries == 0 {
		t.Error("trace has no query spans")
	}
	for _, op := range []string{"bind", "aggregate", "sort"} {
		if names[op] == 0 {
			t.Errorf("trace has no %q operator spans (names: %d distinct)", op, len(names))
		}
	}
	if names["morsel"] == 0 {
		t.Error("trace has no morsel spans; the smoke run must use -parallelism > 1 at a scale with a >64K-row table")
	}
}
