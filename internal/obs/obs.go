// Package obs is the zero-dependency observability core: a span tracer
// for execution timelines, a metrics registry of sharded-atomic
// counters/gauges/histograms, and exporters for Chrome trace_event
// JSON, JSONL event logs, and plain-text metric dumps.
//
// The package exists so the benchmark can answer "where did the time
// go" — which operator, which morsel worker, which stream — without
// perturbing what it measures. Two contracts follow:
//
//   - Disabled means free. Every recording method is a method on a
//     pointer receiver that tolerates nil: a nil *Tracer produces nil
//     *Span children, and nil *Span / *Counter / *Histogram methods
//     return before touching memory. Instrumented code threads the
//     possibly-nil handles unconditionally; when tracing is off the
//     hot path pays one nil check and zero allocations (a property the
//     exec tests pin with testing.AllocsPerRun).
//
//   - Observation never alters results. Spans and metrics only read
//     the clock and count; they carry no row data and make no
//     scheduling decisions, so the engine's bit-identical-results and
//     goroutine-ownership invariants hold with tracing on or off (the
//     differential tests run under an active tracer to prove it).
//
// Timestamps are monotonic durations since the tracer's epoch
// (time.Since on a time.Time retains the monotonic reading), so spans
// order correctly even across wall-clock adjustments.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (row counts, table names,
// worker ids). Values must be JSON-encodable.
type Attr struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// SpanRecord is one completed span as exported: identifiers, interval
// relative to the tracer epoch, and annotations.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Cat    string `json:"cat,omitempty"`
	// TID is the exporter lane: Chrome trace viewers stack spans with
	// the same tid on one horizontal track, so streams and morsel
	// workers get distinct lanes.
	TID     int    `json:"tid"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Tracer collects completed spans. All methods are goroutine-safe; a
// nil Tracer is a valid disabled tracer (Root returns nil and the
// whole span API degrades to no-ops).
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64

	mu    sync.Mutex
	done  []SpanRecord
	limit int // max retained records; 0 = unbounded (batch default)
	next  int // ring cursor, meaningful only when limit > 0 and full
}

// NewTracer returns an enabled tracer whose epoch is now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// SetSpanLimit bounds the number of completed spans the tracer retains:
// once n spans are held, each newly completed span overwrites the
// oldest. n <= 0 restores the default unbounded retention used by
// batch runs (a benchmark wants its whole timeline); service-style
// runs set a limit so span memory stays flat no matter how long the
// process lives. Safe to call concurrently with span completion.
func (t *Tracer) SetSpanLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		t.limit, t.next = 0, 0
		return
	}
	t.limit = n
	if len(t.done) > n {
		// Keep the n most recently completed records.
		kept := make([]SpanRecord, n)
		copy(kept, t.done[len(t.done)-n:])
		t.done = kept
	}
	// The ring cursor restarts at the oldest retained record.
	t.next = 0
}

// Span is one in-progress measurement. A span is created by exactly
// one goroutine and must be ended by a goroutine that happens-after
// its creation (End on the creating goroutine, or after a join). The
// attrs slice is owned by that goroutine; only End publishes it.
//
// A nil *Span is the disabled span: every method returns immediately
// and Child returns nil, so instrumentation never branches on
// enablement.
type Span struct {
	tr     *Tracer
	parent *Span
	id     uint64
	name   string
	cat    string
	tid    int
	start  time.Duration
	attrs  []Attr
	ended  bool
}

// Root opens a top-level span. Returns nil on a nil tracer.
func (t *Tracer) Root(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:    t,
		id:    t.ids.Add(1),
		name:  name,
		cat:   cat,
		start: time.Since(t.epoch),
	}
}

// child opens a nested span; cat and tid default to the parent's.
func (s *Span) child(name, cat string, tid int) *Span {
	c := &Span{
		tr:     s.tr,
		parent: s,
		id:     s.tr.ids.Add(1),
		name:   name,
		cat:    cat,
		tid:    tid,
		start:  time.Since(s.tr.epoch),
	}
	return c
}

// Child opens a nested span inheriting the parent's category and lane.
// Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.cat, s.tid)
}

// ChildCat opens a nested span with its own category (e.g. an "exec"
// operator under a "driver" query).
func (s *Span) ChildCat(name, cat string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, cat, s.tid)
}

// ChildTID opens a nested span on its own exporter lane (streams,
// morsel workers).
func (s *Span) ChildTID(name string, tid int) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.cat, tid)
}

// SetAttr annotates the span. Creator goroutine only (see Span).
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// SetAttrInt annotates the span with an integer. Unlike SetAttr the
// value is boxed only after the nil check, so disabled call sites stay
// allocation-free on the hot path.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// Parent returns the enclosing span (nil for roots and nil spans).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// TID returns the span's exporter lane.
func (s *Span) TID() int {
	if s == nil {
		return 0
	}
	return s.tid
}

// End completes the span, publishes its record to the tracer, and
// returns its duration. Idempotent: a second End is a no-op returning
// zero, so "explicit End plus a safety defer End" is safe.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := time.Since(s.tr.epoch) - s.start
	rec := SpanRecord{
		ID:      s.id,
		Name:    s.name,
		Cat:     s.cat,
		TID:     s.tid,
		StartNs: int64(s.start),
		DurNs:   int64(d),
		Attrs:   s.attrs,
	}
	if s.parent != nil {
		rec.Parent = s.parent.id
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if n := s.tr.next; s.tr.limit > 0 && len(s.tr.done) >= s.tr.limit && n >= 0 && n < len(s.tr.done) {
		// Bounded ring: overwrite the oldest retained record. Snapshot
		// sorts by start time, so physical ring order never leaks out.
		s.tr.done[n] = rec
		s.tr.next = (n + 1) % s.tr.limit
	} else {
		s.tr.done = append(s.tr.done, rec)
	}
	return d
}

// Snapshot returns a copy of every completed span, ordered by start
// time (ties broken by creation id), so exports are deterministic for
// a given execution.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartNs != out[b].StartNs {
			return out[a].StartNs < out[b].StartNs
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Len reports how many spans have completed.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}
