package obs

import "context"

// spanKey is the private context key for span propagation.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s, so a caller's span (a driver
// query) can parent spans opened deeper in the stack (exec operators)
// without threading tracer handles through every signature. A nil span
// returns ctx unchanged — disabled tracing adds no context layer.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
