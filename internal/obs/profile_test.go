package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// TestProfileTreeAccounting builds a small operator tree the way the
// executor does (StartChild/End pairs, counters between them) and
// checks the snapshot carries every field to the right node.
func TestProfileTreeAccounting(t *testing.T) {
	root := NewProfile("query")
	join := root.StartChild("join")
	join.AddRowsIn(1000)
	build := join.StartChild("build d")
	build.AddRowsIn(50)
	build.AddRowsOut(50)
	build.GrowScratch(4096)
	build.ShrinkScratch(4096)
	build.End()
	probe := join.StartChild("probe d")
	probe.AddRowsIn(1000)
	probe.AddRowsOut(400)
	probe.SetEst(380)
	probe.AddBatches(2)
	probe.AddMorsels(8)
	probe.End()
	join.AddRowsOut(400)
	join.End()
	root.End()

	p := root.Snapshot()
	if p.Name != "query" || len(p.Children) != 1 {
		t.Fatalf("root = %q with %d children, want query with 1", p.Name, len(p.Children))
	}
	j := p.Children[0]
	if len(j.Children) != 2 {
		t.Fatalf("join has %d children, want build+probe", len(j.Children))
	}
	b, pr := j.Children[0], j.Children[1]
	if b.Name != "build d" || b.RowsOut != 50 || b.ScratchBytes != 4096 {
		t.Errorf("build node = %+v, want 50 rows out, 4096 peak scratch", b)
	}
	if pr.RowsIn != 1000 || pr.RowsOut != 400 || pr.Batches != 2 || pr.Morsels != 8 {
		t.Errorf("probe node = %+v, want in=1000 out=400 batches=2 morsels=8", pr)
	}
	if !pr.HasEst || pr.EstRows != 380 {
		t.Errorf("probe est = %v (has=%v), want 380", pr.EstRows, pr.HasEst)
	}
	if want := QErrorOf(380, 400); pr.QError != want {
		t.Errorf("probe q-error = %v, want %v", pr.QError, want)
	}
	for _, n := range []*OpProfile{p, j, b, pr} {
		if n.WallNs <= 0 {
			t.Errorf("node %q wall = %d, want > 0 after End", n.Name, n.WallNs)
		}
	}
	if worst := p.WorstQError(); worst != pr {
		t.Errorf("WorstQError = %v, want the probe node", worst)
	}
	if got, want := p.OpNames(), []string{"build d", "join", "probe d", "query"}; !reflect.DeepEqual(got, want) {
		t.Errorf("OpNames = %v, want %v", got, want)
	}
	// Walk visits in pre-order render order.
	var order []string
	p.Walk(func(n *OpProfile) { order = append(order, n.Name) })
	if want := []string{"query", "join", "build d", "probe d"}; !reflect.DeepEqual(order, want) {
		t.Errorf("Walk order = %v, want %v", order, want)
	}
}

func TestQErrorOf(t *testing.T) {
	cases := []struct{ est, act, want float64 }{
		{100, 100, 1},
		{100, 25, 4},
		{25, 100, 4},
		{0, 0, 1},   // both clamp to 1: empty estimated empty is perfect
		{0.2, 0, 1}, // sub-row estimate vs empty actual
		{0, 50, 50}, // estimated empty, got 50
	}
	for _, c := range cases {
		if got := QErrorOf(c.est, c.act); got != c.want {
			t.Errorf("QErrorOf(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

// TestProfileNilSafe pins the disabled contract: every OpNode method on
// nil returns without touching memory, and a nil snapshot renders to
// nothing.
func TestProfileNilSafe(t *testing.T) {
	var n *OpNode
	c := n.StartChild("x")
	if c != nil {
		t.Fatal("StartChild on nil returned a live node")
	}
	n.End()
	n.AddRowsIn(1)
	n.AddRowsOut(1)
	n.AddMorsels(1)
	n.AddBatches(1)
	n.SetEst(10)
	n.GrowScratch(100)
	n.ShrinkScratch(100)
	if n.Parent() != nil || n.Snapshot() != nil {
		t.Error("nil node leaked a parent or snapshot")
	}
	var p *OpProfile
	p.Walk(func(*OpProfile) { t.Error("Walk visited a nil profile") })
}

// TestProfileWorkerCountersRace exercises the worker-safe fields from
// many goroutines (run under -race) and checks the sums and the
// CAS-max peak land deterministically.
func TestProfileWorkerCountersRace(t *testing.T) {
	n := NewProfile("op")
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n.AddBatches(1)
				n.GrowScratch(64)
				n.ShrinkScratch(64)
			}
		}()
	}
	wg.Wait()
	n.End()
	p := n.Snapshot()
	if p.Batches != workers*iters {
		t.Errorf("batches = %d, want %d", p.Batches, workers*iters)
	}
	if p.ScratchBytes < 64 || p.ScratchBytes > workers*64 {
		t.Errorf("peak scratch = %d, want within [64, %d]", p.ScratchBytes, workers*64)
	}
}

// TestProfileRenderGolden pins the EXPLAIN ANALYZE rendering byte for
// byte. The profile is constructed directly with fixed wall times, so
// the golden holds across machines; the executor-facing layout (indent
// step, field order, omitted zeros) must not drift silently.
func TestProfileRenderGolden(t *testing.T) {
	p := &OpProfile{
		Name: "query", WallNs: 2_500_000,
		Children: []*OpProfile{
			{Name: "bind", WallNs: 100_000},
			{
				Name: "join", WallNs: 2_000_000, RowsIn: 1000, RowsOut: 400,
				Children: []*OpProfile{
					{Name: "build d", WallNs: 300_000, RowsIn: 50, RowsOut: 50, ScratchBytes: 4096},
					{
						Name: "probe d", WallNs: 1_500_000, RowsIn: 1000, RowsOut: 400,
						EstRows: 380, HasEst: true, QError: QErrorOf(380, 400),
						Batches: 2, Morsels: 8,
					},
				},
			},
			{Name: "sort", WallNs: 200_000, RowsIn: 400, RowsOut: 400, ScratchBytes: 3 << 20},
		},
	}
	want := "query                    time=2.5ms\n" +
		"  bind                   time=100µs\n" +
		"  join                   time=2ms rows_in=1000 rows_out=400\n" +
		"    build d              time=300µs rows_in=50 rows_out=50 scratch=4.0KiB\n" +
		"    probe d              time=1.5ms rows_in=1000 rows_out=400 est=380 q=1.05 batches=2 morsels=8\n" +
		"  sort                   time=200µs rows_in=400 rows_out=400 scratch=3.0MiB\n"
	if got := p.String(); got != want {
		t.Errorf("render drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The snapshot is JSON-encodable with stable field names (the
	// bench-json artifact embeds these).
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back OpProfile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Children[1].Children[1].QError != p.Children[1].Children[1].QError {
		t.Error("q-error did not round-trip through JSON")
	}
}

// TestProfileEndIdempotent: a second End keeps the first wall time.
func TestProfileEndIdempotent(t *testing.T) {
	n := NewProfile("x")
	n.End()
	first := n.Snapshot().WallNs
	n.End()
	if again := n.Snapshot().WallNs; again != first {
		t.Errorf("second End changed wall time: %d -> %d", first, again)
	}
	if first <= 0 {
		t.Errorf("wall = %d, want >= 1 (sub-resolution clamp)", first)
	}
}
