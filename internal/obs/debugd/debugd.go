// Package debugd is the zero-dependency live diagnostics endpoint: a
// small HTTP server exposing the observability surfaces a running
// benchmark already maintains — the metrics registry, the in-flight
// query set, the recent-span ring — plus the runtime's pprof handlers.
// dsbench and dsql mount it behind -debug-addr; it is the day-one
// observability surface a dsqld service would reuse.
//
// Every handler reads snapshots through the obs package's concurrency
// contracts (Registry and Tracer are safe for concurrent use; the
// query source snapshots under its own lock), so the server is safe
// under -race with live query streams. Shutdown stops accepting,
// drains in-flight handlers, and joins the serve goroutine — no
// goroutine outlives it.
package debugd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"tpcds/internal/obs"
)

// Config wires the diagnostic surfaces into the server. Any field may
// be nil; the corresponding endpoint then serves an empty document
// rather than an error, so a partially instrumented run still gets a
// working endpoint.
type Config struct {
	// Tracer backs /spans (recent completed spans; bound it with
	// Tracer.SetSpanLimit for service-style runs).
	Tracer *obs.Tracer
	// Metrics backs /metrics (the registry's sorted text dump).
	Metrics *obs.Registry
	// Queries backs /queries (the driver's in-flight query registry).
	Queries obs.QuerySource
}

// Server is a running diagnostics endpoint.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
	// The serve goroutine is cancellation-driven: it parks on the
	// ownership context (derived from the caller's ctx) once Serve
	// returns, stop cancels that context, and close(done) is the join —
	// Shutdown receives on done, so no goroutine outlives the server.
	// serveErr is written before close(done) and read after the receive,
	// so the join orders it.
	stop     context.CancelFunc
	done     chan struct{}
	serveErr error
}

// Start listens on addr (":0" picks a free port — tests and one-off
// runs read the bound address back via Addr) and serves until
// Shutdown. ctx bounds the server's lifetime from the caller's side:
// the serve goroutine is owned by a cancellation scope derived from
// it, which Shutdown also cancels.
func Start(ctx context.Context, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugd: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/spans", s.handleSpans)
	// The pprof handlers register on the default mux at import; mount
	// them explicitly so this server works with its own mux and the
	// process never serves diagnostics it did not opt into.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	// The serve goroutine is owned by this cancellation scope: whichever
	// way Serve returns, the goroutine parks on the context until
	// Shutdown (or the caller) cancels it, so it provably never outlives
	// the server, and close(done) is the join Shutdown receives on.
	sctx, cancel := context.WithCancel(ctx)
	s.stop = cancel
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Shutdown result; a real listener
		// failure is held for Shutdown to report.
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
		<-sctx.Done()
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port), resolving ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections, waits for in-flight handlers
// up to ctx's deadline, and joins the serve goroutine, so no goroutine
// leaks past it.
func (s *Server) Shutdown(ctx context.Context) error {
	// Cancel first so the serve goroutine's park is already released
	// when Serve returns.
	s.stop()
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err == nil {
		err = s.serveErr
	}
	if err != nil {
		return fmt.Errorf("debugd: shutdown: %w", err)
	}
	return nil
}

// handleIndex lists the mounted endpoints.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := fmt.Fprint(w, "tpcds debugd\n"+
		"  /metrics        registry text dump (sorted)\n"+
		"  /queries        active queries (JSON)\n"+
		"  /spans          recent spans as JSONL; ?format=chrome for trace_event JSON\n"+
		"  /debug/pprof/   runtime profiles\n"); err != nil {
		return // client went away mid-write; nothing left to serve
	}
}

// handleMetrics serves the registry's deterministic text dump.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.cfg.Metrics.WriteText(w); err != nil {
		// Headers are gone; all that is left is to stop writing.
		return
	}
}

// handleQueries serves the current in-flight query snapshot as a JSON
// array (always an array — an idle system serves []).
func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	qs := []obs.ActiveQuery{}
	if s.cfg.Queries != nil {
		if aq := s.cfg.Queries.ActiveQueries(); aq != nil {
			qs = aq
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(qs); err != nil {
		return // client went away mid-write
	}
}

// handleSpans serves the tracer's completed-span snapshot: JSONL by
// default, the Chrome trace_event document with ?format=chrome.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tracer == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeTrace(w, s.cfg.Tracer); err != nil {
			return // client went away mid-write
		}
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if err := obs.WriteJSONL(w, s.cfg.Tracer); err != nil {
		return // client went away mid-write
	}
}
