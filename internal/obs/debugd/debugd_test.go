package debugd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tpcds/internal/obs"
)

// fakeQueries is a static QuerySource standing in for the driver's
// in-flight registry.
type fakeQueries struct{ qs []obs.ActiveQuery }

func (f fakeQueries) ActiveQueries() []obs.ActiveQuery { return f.qs }

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close %s: %v", url, err)
		}
	}()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestEndpoints starts a fully wired server on a free port and checks
// every mounted endpoint serves its documented shape.
func TestEndpoints(t *testing.T) {
	tracer := obs.NewTracer()
	sp := tracer.Root("bench", "driver")
	sp.Child("q1").End()
	sp.End()
	reg := obs.NewRegistry()
	reg.Counter("exec_rows_scanned").Add(123)
	reg.Histogram("query_ns").Observe(5000)
	qs := fakeQueries{qs: []obs.ActiveQuery{
		{ID: 1, Run: 1, Stream: 0, Template: 42, Phase: "join", Rows: 10, ElapsedNs: 999},
	}}
	srv, err := Start(context.Background(), "127.0.0.1:0", Config{Tracer: tracer, Metrics: reg, Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d body %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "exec_rows_scanned") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body := get(t, base+"/queries")
	if code != 200 {
		t.Fatalf("/queries: code %d", code)
	}
	var active []obs.ActiveQuery
	if err := json.Unmarshal([]byte(body), &active); err != nil {
		t.Fatalf("/queries not a JSON array: %v\n%s", err, body)
	}
	if len(active) != 1 || active[0].Template != 42 || active[0].Phase != "join" {
		t.Errorf("/queries = %+v, want the one in-flight q42 in phase join", active)
	}
	if code, body := get(t, base+"/spans"); code != 200 || !strings.Contains(body, `"name":"q1"`) {
		t.Errorf("/spans: code %d body %q", code, body)
	}
	if code, body := get(t, base+"/spans?format=chrome"); code != 200 {
		t.Errorf("/spans?format=chrome: code %d", code)
	} else if err := obs.ValidateChromeTrace([]byte(body)); err != nil {
		t.Errorf("/spans?format=chrome invalid: %v", err)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	if code, _ := get(t, base+"/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

// TestNilConfigServesEmpty: an unwired server answers every endpoint
// with an empty document instead of crashing.
func TestNilConfigServesEmpty(t *testing.T) {
	srv, err := Start(context.Background(), "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Errorf("/metrics with nil registry: code %d", code)
	}
	code, body := get(t, base+"/queries")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("/queries with nil source: code %d body %q, want []", code, body)
	}
	if code, body := get(t, base+"/spans"); code != 200 || strings.TrimSpace(body) != "" {
		t.Errorf("/spans with nil tracer: code %d body %q, want empty", code, body)
	}
}

// TestConcurrentClientsAndShutdown hammers the server from 4 client
// goroutines (the ISSUE's 4-stream shape) while spans and counters are
// still being recorded, then shuts down and verifies no goroutine
// leaked — the serve goroutine and every handler joined.
func TestConcurrentClientsAndShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	tracer := obs.NewTracer()
	tracer.SetSpanLimit(64)
	reg := obs.NewRegistry()
	srv, err := Start(context.Background(), "127.0.0.1:0", Config{Tracer: tracer, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	var wg sync.WaitGroup
	paths := []string{"/metrics", "/queries", "/spans", "/spans?format=chrome"}
	wg.Add(len(paths) + 1)
	// A writer keeps the instruments hot while clients read them.
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tracer.Root(fmt.Sprintf("s%d", i), "test").End()
			reg.Counter("hot").Add(1)
			reg.Histogram("h").Observe(int64(i))
		}
	}()
	for _, p := range paths {
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if code, _ := get(t, base+path); code != 200 {
					t.Errorf("GET %s: code %d", path, code)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The connection pool's idle goroutines unwind asynchronously; poll
	// briefly rather than flake.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d across server lifetime", before, after)
	}
}

// TestStartErrorOnBadAddr: an unbindable address fails fast with no
// server left behind.
func TestStartErrorOnBadAddr(t *testing.T) {
	if _, err := Start(context.Background(), "256.256.256.256:1", Config{}); err == nil {
		t.Fatal("Start on an invalid address succeeded")
	}
}
