package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// chromeEvent is one trace_event entry in the Chrome/Perfetto JSON
// format: ph "X" is a complete event with microsecond ts/dur.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container both chrome://tracing
// and Perfetto accept.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// chromeEvents converts the tracer's snapshot. Span tids become trace
// tids, so streams and morsel workers land on their own tracks.
func chromeEvents(t *Tracer) []chromeEvent {
	snap := t.Snapshot()
	evs := make([]chromeEvent, 0, len(snap))
	for _, s := range snap {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.StartNs) / 1e3,
			Dur:  float64(s.DurNs) / 1e3,
			PID:  1,
			TID:  s.TID,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		evs = append(evs, ev)
	}
	return evs
}

// WriteChromeTrace writes the tracer's completed spans as a Chrome
// trace_event JSON file (load it into chrome://tracing or
// https://ui.perfetto.dev). Events are sorted by start time.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	// Encode into a buffer first so w sees either a complete document
	// or nothing, and the single Write below is the only fallible I/O.
	data, err := json.Marshal(chromeTrace{TraceEvents: chromeEvents(t)})
	if err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}

// WriteJSONL writes one SpanRecord JSON object per line, sorted by
// start time then id — a stable shape for diffing two runs with
// line-oriented tools.
func WriteJSONL(w io.Writer, t *Tracer) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range t.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: encoding span: %w", err)
		}
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("obs: writing span log: %w", err)
	}
	return nil
}

// WriteFile renders the tracer through render into path — the shared
// CLI plumbing behind -trace and -events flags. Close errors are
// folded into the returned error so a full disk is never silent.
func WriteFile(path string, t *Tracer, render func(io.Writer, *Tracer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("obs: closing %s: %w", path, cerr)
		}
	}()
	return render(f, t)
}

// ValidateChromeTrace checks the invariants the CI smoke job asserts
// about an exported trace: well-formed JSON, at least one complete
// ("X") event, non-negative durations, and non-decreasing timestamps.
func ValidateChromeTrace(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	complete := 0
	lastTS := -1.0
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		if ev.Dur < 0 {
			return fmt.Errorf("obs: event %d (%s) has negative duration %v", i, ev.Name, ev.Dur)
		}
		if ev.TS < lastTS {
			return fmt.Errorf("obs: event %d (%s) breaks ts monotonicity (%v after %v)",
				i, ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
	}
	if complete == 0 {
		return fmt.Errorf("obs: trace contains no complete events")
	}
	return nil
}

// WriteText appends a plain-text dump of every instrument to w, sorted
// by name, in the shape the dsbench report embeds. Histograms whose
// name ends in "_ns" render their statistics as durations.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	var buf bytes.Buffer
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name := range r.counters {
		counters[name] = r.counters[name].Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name := range r.gauges {
		gauges[name] = r.gauges[name].Value()
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name := range r.histograms {
		hists[name] = r.histograms[name]
	}
	r.mu.Unlock()

	for _, name := range sortedKeysC(counters) {
		fmt.Fprintf(&buf, "counter %-32s %d\n", name, counters[name])
	}
	for _, name := range sortedKeysC(gauges) {
		fmt.Fprintf(&buf, "gauge   %-32s %d\n", name, gauges[name])
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := hists[name]
		fmt.Fprintf(&buf, "hist    %-32s count=%d p50=%s p95=%s max=%s\n",
			name, h.Count(),
			histValue(name, h.Quantile(0.50)),
			histValue(name, h.Quantile(0.95)),
			histValue(name, h.Max()))
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("obs: writing metrics dump: %w", err)
	}
	return nil
}

// CounterValues snapshots every counter's current value by name — the
// machine-readable sibling of WriteText for run artifacts. Nil-safe.
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// sortedKeysC returns map keys in sorted order (map iteration order is
// random; exports must be stable).
func sortedKeysC(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// histValue renders one histogram statistic, as a duration for "_ns"
// histograms.
func histValue(name string, v int64) string {
	if len(name) >= 3 && name[len(name)-3:] == "_ns" {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}
