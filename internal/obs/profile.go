package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// OpNode is one live operator node in a query's runtime profile tree.
// The tree mirrors the plan shape the span tree describes (bind, join,
// scan/build/probe/stream/star, aggregate, sort, ...), but where spans
// record only intervals, OpNodes accumulate the operator's runtime
// accounting: actual rows in/out, batch and morsel counts, and peak
// scratch bytes.
//
// Ownership follows the span contract exactly. A node is created and
// ended by the query's coordinator goroutine, which also owns rowsIn,
// rowsOut, morsels, and the child list. Morsel workers may only touch
// the atomic fields (batches, scratch) — those are commutative sums
// and maxima, so the aggregate is deterministic regardless of worker
// scheduling. The coordinator is blocked in the morsel join while
// workers run, so its plain fields never race with worker updates.
//
// A nil *OpNode is the disabled profile: every method returns
// immediately and StartChild returns nil, so instrumented code threads
// the possibly-nil handle unconditionally and the disabled path stays
// allocation-free (pinned by TestDisabledObservabilityAllocatesNothing).
type OpNode struct {
	name    string
	parent  *OpNode
	childs  []*OpNode
	start   time.Time
	wallNs  int64
	rowsIn  int64
	rowsOut int64
	morsels int64
	estRows float64
	hasEst  bool

	batches     atomic.Int64
	scratchCur  atomic.Int64
	scratchPeak atomic.Int64
}

// NewProfile opens a profile tree rooted at name (conventionally the
// query phase root, "query").
func NewProfile(name string) *OpNode {
	return &OpNode{name: name, start: time.Now()}
}

// StartChild opens a child operator node and starts its clock. Returns
// nil on a nil node. Coordinator goroutine only.
func (n *OpNode) StartChild(name string) *OpNode {
	if n == nil {
		return nil
	}
	c := &OpNode{name: name, parent: n, start: time.Now()}
	n.childs = append(n.childs, c)
	return c
}

// End stops the node's clock. Idempotent (the recorded wall time is
// the first End). Coordinator goroutine only.
func (n *OpNode) End() {
	if n == nil || n.wallNs != 0 {
		return
	}
	n.wallNs = int64(time.Since(n.start))
	if n.wallNs == 0 {
		n.wallNs = 1 // sub-resolution operator; distinguish from "never ended"
	}
}

// Parent returns the enclosing node (nil for roots and nil nodes).
func (n *OpNode) Parent() *OpNode {
	if n == nil {
		return nil
	}
	return n.parent
}

// AddRowsIn accumulates rows entering the operator. Coordinator only.
func (n *OpNode) AddRowsIn(d int64) {
	if n == nil {
		return
	}
	n.rowsIn += d
}

// AddRowsOut accumulates rows leaving the operator. Coordinator only.
func (n *OpNode) AddRowsOut(d int64) {
	if n == nil {
		return
	}
	n.rowsOut += d
}

// AddMorsels accumulates the morsel count after a parallel join (the
// coordinator sums per-worker counts once workers have joined).
func (n *OpNode) AddMorsels(d int64) {
	if n == nil {
		return
	}
	n.morsels += d
}

// SetEst records the planner's cardinality estimate for the operator's
// output, enabling q-error in the snapshot. Coordinator only.
func (n *OpNode) SetEst(rows float64) {
	if n == nil {
		return
	}
	n.estRows = rows
	n.hasEst = true
}

// AddBatches counts vectorized batches. Safe from any worker.
func (n *OpNode) AddBatches(d int64) {
	if n == nil {
		return
	}
	n.batches.Add(d)
}

// GrowScratch records the allocation of b scratch bytes and advances
// the peak. Safe from any worker; the peak is a CAS-max so concurrent
// growth from several workers lands deterministically at the true
// high-water mark of the sum.
func (n *OpNode) GrowScratch(b int64) {
	if n == nil {
		return
	}
	cur := n.scratchCur.Add(b)
	for {
		peak := n.scratchPeak.Load()
		if cur <= peak || n.scratchPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// ShrinkScratch releases b scratch bytes (the peak is unaffected).
func (n *OpNode) ShrinkScratch(b int64) {
	if n == nil {
		return
	}
	n.scratchCur.Add(-b)
}

// OpProfile is the exported snapshot of one profile node: plain data,
// JSON-encodable, safe to retain after the query completes.
type OpProfile struct {
	Name    string `json:"name"`
	WallNs  int64  `json:"wall_ns"`
	RowsIn  int64  `json:"rows_in,omitempty"`
	RowsOut int64  `json:"rows_out,omitempty"`
	Batches int64  `json:"batches,omitempty"`
	Morsels int64  `json:"morsels,omitempty"`
	// ScratchBytes is the peak transient working memory attributed to
	// the operator (selection vectors, hash partitions, group arrays).
	// It is an accounting of the dominant allocation sites, not a
	// byte-exact heap measurement.
	ScratchBytes int64 `json:"scratch_bytes,omitempty"`
	// EstRows is the planner's output-cardinality estimate; HasEst
	// distinguishes "estimated zero" from "never estimated".
	EstRows float64 `json:"est_rows,omitempty"`
	HasEst  bool    `json:"has_est,omitempty"`
	// QError is max(est/act, act/est) with both sides clamped to >= 1,
	// the symmetric misestimation factor (1 = perfect). Zero when the
	// operator has no estimate.
	QError   float64      `json:"qerror,omitempty"`
	Children []*OpProfile `json:"children,omitempty"`
}

// QErrorOf computes the symmetric q-error between an estimated and an
// actual cardinality. Both sides are clamped to >= 1 so empty results
// and sub-row estimates compare stably (est 0.2 vs actual 0 is a
// perfect 1.0, not an infinity).
func QErrorOf(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// Snapshot exports the subtree rooted at n. Coordinator goroutine
// only, after every worker touching the tree has joined. An un-ended
// node is snapshotted with the time accumulated so far.
func (n *OpNode) Snapshot() *OpProfile {
	if n == nil {
		return nil
	}
	wall := n.wallNs
	if wall == 0 {
		wall = int64(time.Since(n.start))
	}
	p := &OpProfile{
		Name:         n.name,
		WallNs:       wall,
		RowsIn:       n.rowsIn,
		RowsOut:      n.rowsOut,
		Batches:      n.batches.Load(),
		Morsels:      n.morsels,
		ScratchBytes: n.scratchPeak.Load(),
		EstRows:      n.estRows,
		HasEst:       n.hasEst,
	}
	if n.hasEst {
		p.QError = QErrorOf(n.estRows, float64(n.rowsOut))
	}
	for _, c := range n.childs {
		p.Children = append(p.Children, c.Snapshot())
	}
	return p
}

// String renders the profile tree in the fixed EXPLAIN ANALYZE layout.
func (p *OpProfile) String() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

// render writes one node and recurses. The field order is fixed and
// zero-valued fields are omitted, so renderings of equal profiles are
// byte-identical (pinned by the golden test); only wall times vary
// between runs of the same query.
func (p *OpProfile) render(b *strings.Builder, depth int) {
	if p == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%-*s time=%v", 24-2*depth, p.Name, time.Duration(p.WallNs).Round(time.Microsecond))
	if p.RowsIn > 0 {
		fmt.Fprintf(b, " rows_in=%d", p.RowsIn)
	}
	if p.RowsOut > 0 || p.RowsIn > 0 {
		fmt.Fprintf(b, " rows_out=%d", p.RowsOut)
	}
	if p.HasEst {
		fmt.Fprintf(b, " est=%.0f q=%.2f", p.EstRows, p.QError)
	}
	if p.Batches > 0 {
		fmt.Fprintf(b, " batches=%d", p.Batches)
	}
	if p.Morsels > 0 {
		fmt.Fprintf(b, " morsels=%d", p.Morsels)
	}
	if p.ScratchBytes > 0 {
		fmt.Fprintf(b, " scratch=%s", byteSize(p.ScratchBytes))
	}
	b.WriteByte('\n')
	for _, c := range p.Children {
		c.render(b, depth+1)
	}
}

// byteSize renders a byte count with a binary-power unit, one decimal.
func byteSize(n int64) string {
	const k = 1024
	switch {
	case n >= k*k*k:
		return fmt.Sprintf("%.1fGiB", float64(n)/(k*k*k))
	case n >= k*k:
		return fmt.Sprintf("%.1fMiB", float64(n)/(k*k))
	case n >= k:
		return fmt.Sprintf("%.1fKiB", float64(n)/k)
	}
	return fmt.Sprintf("%dB", n)
}

// Walk calls fn for every node in the profile tree in render order
// (pre-order, children in plan order).
func (p *OpProfile) Walk(fn func(*OpProfile)) {
	if p == nil {
		return
	}
	fn(p)
	for _, c := range p.Children {
		c.Walk(fn)
	}
}

// WorstQError returns the node with the largest q-error in the tree
// (nil when no node carries an estimate). Ties keep the first node in
// render order, so the answer is deterministic.
func (p *OpProfile) WorstQError() *OpProfile {
	var worst *OpProfile
	p.Walk(func(n *OpProfile) {
		if n.HasEst && (worst == nil || n.QError > worst.QError) {
			worst = n
		}
	})
	return worst
}

// OpNames returns the sorted set of distinct operator names in the
// tree — the shape summary the structural tests compare against span
// trees.
func (p *OpProfile) OpNames() []string {
	seen := map[string]bool{}
	p.Walk(func(n *OpProfile) { seen[n.Name] = true })
	var names []string
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
