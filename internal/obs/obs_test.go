package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("run", "driver")
	stream := root.ChildTID("stream 0", 1)
	q := stream.Child("q42")
	op := q.ChildCat("scan store_sales", "exec")
	op.SetAttr("rows", 128)
	time.Sleep(time.Millisecond)
	op.End()
	q.End()
	stream.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap))
	}
	byName := map[string]SpanRecord{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if byName["stream 0"].Parent != byName["run"].ID {
		t.Errorf("stream parent = %d, want run %d", byName["stream 0"].Parent, byName["run"].ID)
	}
	if byName["q42"].TID != 1 {
		t.Errorf("q42 tid = %d, want inherited 1", byName["q42"].TID)
	}
	if byName["scan store_sales"].Cat != "exec" {
		t.Errorf("operator cat = %q, want exec", byName["scan store_sales"].Cat)
	}
	if got := byName["scan store_sales"].Attrs; len(got) != 1 || got[0].Key != "rows" {
		t.Errorf("operator attrs = %v, want rows", got)
	}
	// Every child interval nests inside its parent's.
	byID := map[uint64]SpanRecord{}
	for _, s := range snap {
		byID[s.ID] = s
	}
	for _, s := range snap {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q has unknown parent %d", s.Name, s.Parent)
		}
		if s.StartNs < p.StartNs || s.StartNs+s.DurNs > p.StartNs+p.DurNs {
			t.Errorf("span %q [%d,%d] escapes parent %q [%d,%d]",
				s.Name, s.StartNs, s.StartNs+s.DurNs, p.Name, p.StartNs, p.StartNs+p.DurNs)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Root("x", "test")
	if d := sp.End(); d < 0 {
		t.Errorf("first End = %v, want >= 0", d)
	}
	if d := sp.End(); d != 0 {
		t.Errorf("second End = %v, want 0", d)
	}
	if tr.Len() != 1 {
		t.Errorf("tracer recorded %d spans, want 1", tr.Len())
	}
}

// TestDisabledIsNilSafe drives the whole API through nil receivers —
// the disabled configuration every instrumented call site runs with by
// default — and checks it neither panics nor allocates.
func TestDisabledIsNilSafe(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root("x", "y")
		c := sp.Child("a")
		c = c.ChildCat("b", "z")
		c = c.ChildTID("c", 3)
		c.SetAttr("k", 1)
		_ = c.Parent()
		_ = c.TID()
		c.End()
		sp.End()
		reg.Counter("n").Add(1)
		reg.Gauge("g").Set(2)
		reg.Histogram("h_ns").Observe(3)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v times per run, want 0", allocs)
	}
	if tr.Snapshot() != nil || tr.Len() != 0 {
		t.Errorf("nil tracer reports spans")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("nil span should not wrap the context")
	}
	tr := NewTracer()
	sp := tr.Root("q", "driver")
	if got := SpanFromContext(ContextWithSpan(ctx, sp)); got != sp {
		t.Fatalf("got %v, want the stored span", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram(DurationBuckets)
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * int64(time.Millisecond))
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	if got := h.Max(); got != int64(100*time.Millisecond) {
		t.Errorf("max = %v, want 100ms", time.Duration(got))
	}
	// Bucket quantiles are upper bounds: p50 of 1..100ms falls in the
	// bucket bounded by 65.536ms (2^16 µs).
	p50 := time.Duration(h.Quantile(0.50))
	if p50 < 50*time.Millisecond || p50 > 66*time.Millisecond {
		t.Errorf("p50 = %v, want within [50ms, 66ms]", p50)
	}
	p100 := time.Duration(h.Quantile(1.0))
	if p100 != 100*time.Millisecond {
		t.Errorf("p100 = %v, want exact max 100ms", p100)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Errorf("unused histogram quantile should be 0")
	}
}

// TestHistogramQuantileEdges pins the Quantile/Max edge cases: empty
// histograms, q outside [0,1] (a huge q used to overflow the target
// rank and report the minimum bucket), NaN, overflow-bucket values, and
// the Quantile(1.0) == Max() identity.
func TestHistogramQuantileEdges(t *testing.T) {
	edgeQs := []float64{math.Inf(-1), -1, 0, math.NaN(), 0.5, 0.999, 1, 2, 1e300, math.Inf(1)}

	t.Run("empty", func(t *testing.T) {
		h := newHistogram(DurationBuckets)
		if h.Max() != 0 {
			t.Errorf("empty Max = %d, want 0", h.Max())
		}
		for _, q := range edgeQs {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	t.Run("single observation", func(t *testing.T) {
		h := newHistogram(DurationBuckets)
		v := int64(3 * time.Millisecond)
		h.Observe(v)
		for _, q := range edgeQs {
			if got := h.Quantile(q); got != v {
				t.Errorf("Quantile(%v) = %d, want the only observation %d", q, got, v)
			}
		}
	})

	t.Run("overflow bucket", func(t *testing.T) {
		h := newHistogram(DurationBuckets)
		huge := int64(1) << 62 // beyond the largest bound: overflow bucket
		h.Observe(huge)
		h.Observe(int64(time.Millisecond))
		if got := h.Max(); got != huge {
			t.Errorf("Max = %d, want %d", got, huge)
		}
		if got := h.Quantile(1.0); got != h.Max() {
			t.Errorf("Quantile(1.0) = %d, Max() = %d: must be identical", got, h.Max())
		}
		if got := h.Quantile(0.5); got >= huge {
			t.Errorf("p50 = %d: should report the low bucket, not the overflow max", got)
		}
	})

	t.Run("huge q equals max", func(t *testing.T) {
		h := newHistogram(DurationBuckets)
		for i := 1; i <= 1000; i++ {
			h.Observe(int64(i) * int64(time.Microsecond))
		}
		want := h.Max()
		for _, q := range []float64{1, 2, 1e300, math.Inf(1)} {
			if got := h.Quantile(q); got != want {
				t.Errorf("Quantile(%v) = %d, want Max() = %d", q, got, want)
			}
		}
		// And tiny/invalid q reports the lowest occupied bucket bound.
		lo := h.Quantile(0)
		if lo > int64(2*time.Microsecond) {
			t.Errorf("Quantile(0) = %d, want the lowest bucket bound", lo)
		}
		for _, q := range []float64{math.NaN(), -1, math.Inf(-1)} {
			if got := h.Quantile(q); got != lo {
				t.Errorf("Quantile(%v) = %d, want same as Quantile(0) = %d", q, got, lo)
			}
		}
	})

	t.Run("negative observation", func(t *testing.T) {
		h := newHistogram(DurationBuckets)
		h.Observe(-5)
		if got := h.Max(); got != -5 {
			t.Errorf("Max = %d, want -5", got)
		}
		if got := h.Quantile(1.0); got != -5 {
			t.Errorf("Quantile(1.0) = %d, want -5", got)
		}
	})
}

func TestRegistryTextDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exec_rows_scanned").Add(42)
	reg.Gauge("streams").Set(4)
	reg.Histogram("query_ns").ObserveDuration(3 * time.Millisecond)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"counter exec_rows_scanned", "42",
		"gauge   streams", "hist    query_ns", "count=1", "max=3ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestSpanLimitRing covers the bounded-retention contract: below the
// limit spans append; at the limit each completion overwrites the
// oldest; Snapshot still returns start-time order; and n <= 0 restores
// unbounded retention.
func TestSpanLimitRing(t *testing.T) {
	tr := NewTracer()
	tr.SetSpanLimit(4)
	for i := 0; i < 10; i++ {
		sp := tr.Root(fmt.Sprintf("s%d", i), "test")
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d after 10 spans with limit 4", got)
	}
	snap := tr.Snapshot()
	for i, s := range snap {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Errorf("snap[%d] = %q, want %q (4 newest, oldest first)", i, s.Name, want)
		}
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].StartNs < snap[i-1].StartNs {
			t.Errorf("snapshot out of start order at %d", i)
		}
	}

	// Shrinking an over-full tracer keeps the n most recent records.
	tr2 := NewTracer()
	for i := 0; i < 6; i++ {
		tr2.Root(fmt.Sprintf("t%d", i), "test").End()
	}
	tr2.SetSpanLimit(2)
	if got := tr2.Len(); got != 2 {
		t.Fatalf("Len = %d after shrink to 2", got)
	}
	names := map[string]bool{}
	for _, s := range tr2.Snapshot() {
		names[s.Name] = true
	}
	if !names["t4"] || !names["t5"] {
		t.Errorf("shrink kept %v, want the 2 newest t4,t5", names)
	}
	// The next completion overwrites the oldest retained record.
	tr2.Root("t6", "test").End()
	names = map[string]bool{}
	for _, s := range tr2.Snapshot() {
		names[s.Name] = true
	}
	if !names["t5"] || !names["t6"] || len(names) != 2 {
		t.Errorf("after overwrite got %v, want t5,t6", names)
	}

	// n <= 0 restores unbounded growth.
	tr2.SetSpanLimit(0)
	for i := 0; i < 5; i++ {
		tr2.Root("u", "test").End()
	}
	if got := tr2.Len(); got != 7 {
		t.Errorf("Len = %d after unbounding, want 2 retained + 5 new", got)
	}

	// A nil tracer accepts the call.
	var nilTr *Tracer
	nilTr.SetSpanLimit(3)
}

// TestRegistryTextDumpDeterministic: two identically updated registries
// render byte-identical text (map iteration never leaks into output).
func TestRegistryTextDumpDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		for _, name := range []string{"z_last", "a_first", "m_mid", "exec_rows", "exec_batches"} {
			reg.Counter(name).Add(7)
		}
		reg.Gauge("streams").Set(4)
		reg.Histogram("query_ns").Observe(1000)
		reg.Histogram("plan_qerror_x1000").Observe(1500)
		return reg
	}
	var a, b strings.Builder
	if err := build().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("text dumps differ:\n%s\n---\n%s", a.String(), b.String())
	}
	// Sorted section order: all counters lexicographic, then gauges,
	// then histograms.
	out := a.String()
	if strings.Index(out, "a_first") > strings.Index(out, "z_last") {
		t.Error("counters not sorted lexicographically")
	}
}
