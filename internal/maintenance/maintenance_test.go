package maintenance

import (
	"reflect"
	"strings"
	"testing"

	"tpcds/internal/datagen"
	"tpcds/internal/exec"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

func freshEngine(t *testing.T) *exec.Engine {
	t.Helper()
	return exec.New(datagen.New(0.0005, 21).GenerateAll())
}

func TestGenerateRefreshDeterministic(t *testing.T) {
	eng := freshEngine(t)
	a, err := GenerateRefresh(eng.DB(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRefresh(eng.DB(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sales["store"]) != len(b.Sales["store"]) ||
		a.Sales["store"][0] != b.Sales["store"][0] {
		t.Error("refresh generation not deterministic")
	}
	// The FULL set must match, DimUpdates order included: the generator
	// draws from one sequential RNG stream, so iterating the updatable
	// dimensions in map order made every run-2 query result differ from
	// process to process (the cross-planner digest diff caught it).
	if !reflect.DeepEqual(a, b) {
		t.Error("refresh sets differ between identically-seeded generations")
	}
	c, err := GenerateRefresh(eng.DB(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeleteRange["store"] == c.DeleteRange["store"] {
		t.Error("different refresh runs picked identical delete ranges")
	}
}

func TestTwelveOperations(t *testing.T) {
	eng := freshEngine(t)
	rs, err := GenerateRefresh(eng.DB(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(eng, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Ops) != 12 {
		t.Errorf("maintenance ran %d operations, paper defines 12", len(stats.Ops))
	}
	names := map[string]bool{}
	for _, op := range stats.Ops {
		names[op.Name] = true
	}
	for _, want := range []string{
		"update_history_dims", "update_nonhistory_dims",
		"delete_store", "delete_catalog", "delete_web",
		"insert_store_sales", "insert_catalog_sales", "insert_web_sales",
		"insert_store_returns", "insert_catalog_returns", "insert_web_returns",
		"refresh_inventory",
	} {
		if !names[want] {
			t.Errorf("operation %s missing", want)
		}
	}
	if stats.FactInserts == 0 || stats.DimRevisions == 0 || stats.DimInPlace == 0 {
		t.Errorf("stats show no work: %+v", stats)
	}
	if stats.Total() <= 0 {
		t.Error("total duration not recorded")
	}
}

// TestHistoryKeepingUpdate verifies Figure 9: after the update the old
// revision is closed, a new open revision exists with the changed value
// and a fresh surrogate key.
func TestHistoryKeepingUpdate(t *testing.T) {
	eng := freshEngine(t)
	db := eng.DB()
	item := db.Table("item")
	bkCol := item.Def.ColumnIndex("i_item_id")
	endCol := item.Def.ColumnIndex("i_rec_end_date")
	priceCol := item.Def.ColumnIndex("i_current_price")
	// Pick the first item's business key.
	bk := item.Get(0, bkCol).S
	before := item.NumRows()
	updateDate := storage.DateSK(storage.DaysFromYMD(2003, 2, 1))
	rs := &RefreshSet{
		Sales: map[string][]StagedSale{}, Returns: map[string][]StagedReturn{},
		DeleteRange:  map[string][2]int64{},
		UpdateDateSK: updateDate,
		DimUpdates: []DimUpdate{{
			Table: "item", BusinessKey: bk,
			Set: map[string]storage.Value{"i_current_price": storage.Float(123.45)},
		}},
	}
	if _, err := Run(eng, rs); err != nil {
		t.Fatal(err)
	}
	if item.NumRows() != before+1 {
		t.Fatalf("history update should add one revision: %d -> %d", before, item.NumRows())
	}
	// Exactly one open revision for bk, holding the new price.
	open := 0
	for r := 0; r < item.NumRows(); r++ {
		if item.Get(r, bkCol).S != bk {
			continue
		}
		if item.Get(r, endCol).IsNull() {
			open++
			if got := item.Get(r, priceCol).AsFloat(); got != 123.45 {
				t.Errorf("open revision price = %v, want 123.45", got)
			}
		}
	}
	if open != 1 {
		t.Errorf("open revisions for %s = %d, want 1", bk, open)
	}
}

// TestNonHistoryUpdate verifies Figure 8: in-place update, no new rows.
func TestNonHistoryUpdate(t *testing.T) {
	eng := freshEngine(t)
	db := eng.DB()
	cust := db.Table("customer")
	bk := cust.Get(3, cust.Def.ColumnIndex("c_customer_id")).S
	before := cust.NumRows()
	rs := &RefreshSet{
		Sales: map[string][]StagedSale{}, Returns: map[string][]StagedReturn{},
		DeleteRange:  map[string][2]int64{},
		UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 2, 1)),
		DimUpdates: []DimUpdate{{
			Table: "customer", BusinessKey: bk,
			Set: map[string]storage.Value{"c_email_address": storage.Str("new@example.com")},
		}},
	}
	if _, err := Run(eng, rs); err != nil {
		t.Fatal(err)
	}
	if cust.NumRows() != before {
		t.Errorf("non-history update changed row count %d -> %d", before, cust.NumRows())
	}
	emailCol := cust.Def.ColumnIndex("c_email_address")
	if got := cust.Get(3, emailCol).S; got != "new@example.com" {
		t.Errorf("email = %q after update", got)
	}
}

// TestClusteredDeleteAndInsert verifies the delete range empties and the
// staged inserts land with surrogate keys resolved (Figure 10).
func TestClusteredDeleteAndInsert(t *testing.T) {
	eng := freshEngine(t)
	db := eng.DB()
	rs, err := GenerateRefresh(db, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss := db.Table("store_sales")
	stats, err := Run(eng, rs)
	if err != nil {
		t.Fatal(err)
	}
	// No surviving store_sales rows outside the staged inserts may fall
	// inside the deleted range... the staged inserts themselves DO fall
	// inside it (similar data replaces deleted data), so instead verify:
	// every row in the range carries an order number above the
	// pre-refresh maximum (i.e. is a fresh insert).
	rng := rs.DeleteRange["store"]
	dateCol := ss.Def.ColumnIndex("ss_sold_date_sk")
	orderCol := ss.Def.ColumnIndex("ss_ticket_number")
	minNewOrder := rs.Sales["store"][0].Order
	for r := 0; r < ss.NumRows(); r++ {
		d := ss.Get(r, dateCol)
		if d.IsNull() || d.AsInt() < rng[0] || d.AsInt() > rng[1] {
			continue
		}
		if ss.Get(r, orderCol).AsInt() < minNewOrder {
			t.Fatalf("row %d in deleted range has pre-refresh order number", r)
		}
	}
	if stats.FactDeletes == 0 {
		t.Error("clustered delete removed nothing")
	}
	// Inserted rows joined item business keys to surrogate keys: verify
	// via the engine that the new rows join to item.
	res, err := eng.Query(`SELECT COUNT(*) c FROM store_sales, item
		WHERE ss_item_sk = i_item_sk AND ss_ticket_number >= ` +
		storage.Int(minNewOrder).String())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() == 0 {
		t.Error("inserted facts do not join to item dimension")
	}
}

// TestSurrogateKeysResolveToOpenRevision: inserting a sale for an item
// whose dimension row was just revised must use the NEW surrogate key.
func TestSurrogateKeysResolveToOpenRevision(t *testing.T) {
	eng := freshEngine(t)
	db := eng.DB()
	item := db.Table("item")
	bk := item.Get(0, item.Def.ColumnIndex("i_item_id")).S
	rs := &RefreshSet{
		Sales: map[string][]StagedSale{
			"store": {{
				SoldDateSK: storage.DateSK(storage.DaysFromYMD(2001, 5, 5)),
				SoldTimeSK: 1, ItemID: bk,
				CustomerID: db.Table("customer").Get(0, 1).S,
				Order:      9_999_999, Quantity: 2, SalesPrice: 10, Wholesale: 5,
			}},
		},
		Returns: map[string][]StagedReturn{}, DeleteRange: map[string][2]int64{},
		UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 3, 1)),
		DimUpdates: []DimUpdate{{
			Table: "item", BusinessKey: bk,
			Set: map[string]storage.Value{"i_current_price": storage.Float(77)},
		}},
	}
	if _, err := Run(eng, rs); err != nil {
		t.Fatal(err)
	}
	// The update ran before the insert, so the fact must reference the
	// revision created by the update (price 77, rec_end NULL).
	res, err := eng.Query(`SELECT i_current_price FROM store_sales, item
		WHERE ss_item_sk = i_item_sk AND ss_ticket_number = 9999999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsFloat() != 77 {
		t.Fatalf("inserted fact resolves to %+v, want the open revision (price 77)", res.Rows)
	}
}

func TestRunErrors(t *testing.T) {
	eng := freshEngine(t)
	rs := &RefreshSet{
		Sales: map[string][]StagedSale{
			"store": {{ItemID: "NO_SUCH_ITEM", CustomerID: "NO_SUCH_CUSTOMER", Quantity: 1}},
		},
		Returns: map[string][]StagedReturn{}, DeleteRange: map[string][2]int64{},
		UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 1, 1)),
	}
	if _, err := Run(eng, rs); err == nil || !strings.Contains(err.Error(), "unknown item") {
		t.Errorf("unknown business key should fail, got %v", err)
	}
	rs2 := &RefreshSet{
		Sales: map[string][]StagedSale{}, Returns: map[string][]StagedReturn{},
		DeleteRange:  map[string][2]int64{},
		UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 1, 1)),
		DimUpdates:   []DimUpdate{{Table: "nope", BusinessKey: "x"}},
	}
	if _, err := Run(eng, rs2); err == nil {
		t.Error("unknown dimension should fail")
	}
}

// TestSecondRunComparability (§3.3.2): after a maintenance run the SCD
// invariants still hold — at most one open revision per business key —
// so Query Run 2 sees the same data characteristics as Run 1.
func TestSecondRunComparability(t *testing.T) {
	eng := freshEngine(t)
	db := eng.DB()
	rs, err := GenerateRefresh(db, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(eng, rs); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"item", "store", "web_site", "web_page", "call_center"} {
		tab := db.Table(name)
		if tab.Def.SCD != schema.HistoryKeeping {
			t.Fatalf("%s not history keeping?", name)
		}
		bkCol := tab.Def.ColumnIndex(tab.Def.BusinessKey)
		endCol := -1
		for i, c := range tab.Def.Columns {
			if strings.HasSuffix(c.Name, "rec_end_date") {
				endCol = i
			}
		}
		open := map[string]int{}
		for r := 0; r < tab.NumRows(); r++ {
			if tab.Get(r, endCol).IsNull() {
				open[tab.Get(r, bkCol).S]++
			}
		}
		for bk, n := range open {
			if n != 1 {
				t.Errorf("%s %s has %d open revisions after maintenance", name, bk, n)
			}
		}
	}
}
