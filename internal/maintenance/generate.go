package maintenance

import (
	"fmt"
	"sort"

	"tpcds/internal/rng"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// GenerateRefresh synthesizes the staged input of maintenance run n
// against the current database state — the benchmark's stand-in for the
// extraction step (§4.2: "the data extraction step ... is assumed and
// represented in the benchmark in the form of generated flat files").
// The same (seed, n) always yields the same refresh set for a given
// database state.
func GenerateRefresh(db *storage.DB, seed uint64, n int) (*RefreshSet, error) {
	s := rng.NewStream(rng.ColumnSeed(seed, "refresh", fmt.Sprintf("set-%d", n)))
	rs := &RefreshSet{
		Sales:       map[string][]StagedSale{},
		Returns:     map[string][]StagedReturn{},
		DeleteRange: map[string][2]int64{},
	}

	// The update date stamps new SCD revisions: one day past the sales
	// window per refresh run.
	base := storage.DaysFromYMD(2003, 1, 1)
	rs.UpdateDateSK = storage.DateSK(base + int64(n))

	// Clustered delete ranges: a random two-week window per channel
	// inside the sales history (§4.2: "according to a randomly picked
	// date range, fact table data are deleted and substituted with
	// similar data during the insert phase").
	for _, channel := range []string{"store", "catalog", "web"} {
		start := storage.DaysFromYMD(1998, 1, 1) + s.Int63n(365*5-14)
		rs.DeleteRange[channel] = [2]int64{storage.DateSK(start), storage.DateSK(start + 13)}
	}

	items, err := businessKeys(db, "item")
	if err != nil {
		return nil, err
	}
	customers, err := businessKeys(db, "customer")
	if err != nil {
		return nil, err
	}
	if len(items) == 0 || len(customers) == 0 {
		return nil, fmt.Errorf("maintenance: empty item or customer dimension")
	}

	// Staged inserts: roughly 1% of each fact, dated inside the deleted
	// window (similar data replaces the deleted data).
	for _, channel := range []string{"store", "catalog", "web"} {
		fact := db.Table(channelTables[channel][0])
		count := fact.NumRows() / 100
		if count < 10 {
			count = 10
		}
		maxOrder := maxInt64Col(fact, fact.Def.ColumnIndex(fact.Def.PrimaryKey[1]))
		rng := rs.DeleteRange[channel]
		var sales []StagedSale
		order := maxOrder
		for i := 0; i < count; i++ {
			if i%7 == 0 {
				order++ // several line items share an order
			}
			sales = append(sales, StagedSale{
				SoldDateSK: rng[0] + s.Int63n(rng[1]-rng[0]+1),
				SoldTimeSK: 1 + s.Int63n(86400),
				ItemID:     items[s.Intn(len(items))],
				CustomerID: customers[s.Intn(len(customers))],
				Order:      order,
				Quantity:   1 + s.Int63n(100),
				SalesPrice: float64(1+s.Intn(9999)) / 100,
				Wholesale:  float64(1+s.Intn(5000)) / 100,
			})
		}
		rs.Sales[channel] = sales
		// ~10% of the staged sales are returned shortly after.
		var rets []StagedReturn
		for i := 0; i < len(sales); i += 10 {
			sale := sales[i]
			rets = append(rets, StagedReturn{
				ReturnedDateSK: sale.SoldDateSK + 1 + s.Int63n(30),
				ItemID:         sale.ItemID,
				Order:          sale.Order,
				Quantity:       1 + s.Int63n(sale.Quantity),
				Amount:         sale.SalesPrice * float64(sale.Quantity) * 0.9,
			})
		}
		rs.Returns[channel] = rets
	}

	// Dimension updates: a handful of entities per maintainable
	// dimension, with realistic changed attributes.
	updatable := map[string][]string{
		"item":             {"i_current_price"},
		"store":            {"s_manager", "s_number_employees"},
		"call_center":      {"cc_manager", "cc_employees"},
		"web_site":         {"web_manager"},
		"web_page":         {"wp_link_count"},
		"customer":         {"c_email_address", "c_preferred_cust_flag"},
		"customer_address": {"ca_street_number"},
		"warehouse":        {"w_warehouse_sq_ft"},
		"promotion":        {"p_cost"},
		"catalog_page":     {"cp_description"},
	}
	// Iterate in a fixed order: the RNG stream is sequential, so the
	// table processed first determines every later table's draws — map
	// iteration order here made the whole refresh set (and with it the
	// post-maintenance database and every run-2 result) differ from
	// process to process.
	tables := make([]string, 0, len(updatable))
	for table := range updatable {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		cols := updatable[table]
		t := db.Table(table)
		if t == nil || t.Def.BusinessKey == "" {
			continue
		}
		keys, err := businessKeys(db, table)
		if err != nil {
			return nil, err
		}
		count := len(keys) / 20
		if count < 2 {
			count = 2
		}
		if count > 25 {
			count = 25
		}
		if count > len(keys) {
			count = len(keys)
		}
		perm := make([]int, len(keys))
		s.Perm(perm)
		for i := 0; i < count; i++ {
			u := DimUpdate{Table: table, BusinessKey: keys[perm[i]], Set: map[string]storage.Value{}}
			for _, col := range cols {
				c, ok := t.Def.Column(col)
				if !ok {
					return nil, fmt.Errorf("maintenance: %s has no column %s", table, col)
				}
				switch c.Type {
				case schema.Decimal:
					u.Set[col] = storage.Float(float64(1+s.Intn(9999)) / 100)
				case schema.Integer:
					u.Set[col] = storage.Int(1 + s.Int63n(1000))
				default:
					u.Set[col] = storage.Str(fmt.Sprintf("updated-%d-%d", n, s.Intn(1000)))
				}
			}
			rs.DimUpdates = append(rs.DimUpdates, u)
		}
	}
	return rs, nil
}

// businessKeys returns the distinct business keys of a dimension (one
// entry per entity — revisions of history-keeping dimensions share the
// key).
func businessKeys(db *storage.DB, table string) ([]string, error) {
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("maintenance: unknown table %q", table)
	}
	if t.Def.BusinessKey == "" {
		return nil, fmt.Errorf("maintenance: %s has no business key", table)
	}
	col := t.Def.ColumnIndex(t.Def.BusinessKey)
	seen := map[string]bool{}
	var out []string
	for r := 0; r < t.NumRows(); r++ {
		k := t.Get(r, col).S
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}

func maxInt64Col(t *storage.Table, col int) int64 {
	vals, nulls := t.ScanInt64(col)
	var max int64
	for i, v := range vals {
		if !nulls[i] && v > max {
			max = v
		}
	}
	return max
}
