// Package maintenance implements the TPC-DS data maintenance workload
// (§4.2): the periodic ETL refresh of the warehouse. The data
// extraction step ("E") is represented as generated staged data —
// business-keyed rows as they would arrive from an operational system —
// and the package implements the transformations and loads:
//
//   - Figure 8: in-place updates of non-history keeping dimensions;
//   - Figure 9: versioned updates of history keeping dimensions (close
//     the current revision, insert a new open revision);
//   - Figure 10: fact inserts that translate business keys to surrogate
//     keys by joining staged rows against the dimensions (picking the
//     revision with rec_end_date IS NULL for history-keeping ones);
//   - logically clustered fact deletes over a date range (the shape
//     that rewards partition-drop implementations).
//
// The 12 data maintenance operations of the benchmark are the three
// per-channel sales inserts, three returns inserts, three per-channel
// clustered deletes, the inventory refresh, and the two dimension
// update passes (history and non-history). Run applies them in order
// and reports per-operation timings for the driver.
package maintenance

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tpcds/internal/exec"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
)

// StagedSale is one extracted sales row: dimension references arrive as
// business keys (the OLTP system's identifiers), not surrogate keys.
type StagedSale struct {
	SoldDateSK int64 // calendar keys are stable and arrive as-is
	SoldTimeSK int64
	ItemID     string // item business key (i_item_id)
	CustomerID string // customer business key (c_customer_id)
	Order      int64
	Quantity   int64
	SalesPrice float64
	Wholesale  float64
}

// StagedReturn is one extracted return row, referencing a sale by
// (item business key, order number).
type StagedReturn struct {
	ReturnedDateSK int64
	ItemID         string
	Order          int64
	Quantity       int64
	Amount         float64
}

// DimUpdate is one extracted dimension change: the business key
// identifies the entity; Set holds the changed attributes.
type DimUpdate struct {
	Table       string
	BusinessKey string
	Set         map[string]storage.Value
}

// RefreshSet is the staged input of one data maintenance run.
type RefreshSet struct {
	// Sales and Returns are keyed by channel: "store", "catalog", "web".
	Sales   map[string][]StagedSale
	Returns map[string][]StagedReturn
	// DeleteRange is the [lo, hi] sold-date surrogate key range whose
	// fact rows are deleted, per channel (logically clustered, §4.2).
	DeleteRange map[string][2]int64
	// DimUpdates holds both history and non-history dimension changes.
	DimUpdates []DimUpdate
	// UpdateDateSK stamps new SCD revisions (rec date handling).
	UpdateDateSK int64
}

// OpResult is the timing record of one maintenance operation.
type OpResult struct {
	Name     string
	Rows     int
	Duration time.Duration
}

// Stats aggregates a full maintenance run.
type Stats struct {
	Ops          []OpResult
	FactInserts  int
	FactDeletes  int
	DimInPlace   int
	DimRevisions int
}

// Total returns the summed duration of all operations.
func (s Stats) Total() time.Duration {
	var d time.Duration
	for _, op := range s.Ops {
		d += op.Duration
	}
	return d
}

// channelTables maps a channel to its (sales, returns) table names and
// the column prefixes used to locate key columns.
var channelTables = map[string][2]string{
	"store":   {"store_sales", "store_returns"},
	"catalog": {"catalog_sales", "catalog_returns"},
	"web":     {"web_sales", "web_returns"},
}

// Run applies the 12 maintenance operations of one refresh set. The
// engine's cached auxiliary structures for modified tables are
// invalidated (their rebuild on next use is the benchmark's "maintain
// auxiliary data structures" cost, §5.2).
func Run(eng *exec.Engine, rs *RefreshSet) (Stats, error) {
	var stats Stats
	db := eng.DB()
	timed := func(name string, fn func() (int, error)) error {
		start := time.Now()
		n, err := fn()
		if err != nil {
			return fmt.Errorf("maintenance %s: %w", name, err)
		}
		stats.Ops = append(stats.Ops, OpResult{Name: name, Rows: n, Duration: time.Since(start)})
		return nil
	}

	// Operations 1-2: dimension updates (Figures 8 and 9).
	if err := timed("update_history_dims", func() (int, error) {
		n, err := applyDimUpdates(db, rs, schema.HistoryKeeping)
		stats.DimRevisions += n
		return n, err
	}); err != nil {
		return stats, err
	}
	if err := timed("update_nonhistory_dims", func() (int, error) {
		n, err := applyDimUpdates(db, rs, schema.NonHistory)
		stats.DimInPlace += n
		return n, err
	}); err != nil {
		return stats, err
	}
	for _, tab := range []string{"store", "call_center", "web_site", "web_page", "item",
		"customer", "customer_address", "warehouse", "promotion", "catalog_page"} {
		eng.InvalidateIndexes(tab)
	}

	// Operations 3-8: per-channel clustered deletes (sales + returns
	// together form one delete operation per channel), then inserts.
	for _, channel := range []string{"store", "catalog", "web"} {
		ch := channel
		if err := timed("delete_"+ch, func() (int, error) {
			n, err := deleteChannel(db, ch, rs)
			stats.FactDeletes += n
			return n, err
		}); err != nil {
			return stats, err
		}
	}
	for _, channel := range []string{"store", "catalog", "web"} {
		ch := channel
		if err := timed("insert_"+ch+"_sales", func() (int, error) {
			n, err := insertSales(db, ch, rs)
			stats.FactInserts += n
			return n, err
		}); err != nil {
			return stats, err
		}
	}

	// Operations 9-11: returns inserts per channel.
	for _, channel := range []string{"store", "catalog", "web"} {
		ch := channel
		if err := timed("insert_"+ch+"_returns", func() (int, error) {
			n, err := insertReturns(db, ch, rs)
			stats.FactInserts += n
			return n, err
		}); err != nil {
			return stats, err
		}
	}

	// Operation 12: inventory refresh — replace the snapshots falling in
	// the deleted date range with fresh rows for the same weeks.
	if err := timed("refresh_inventory", func() (int, error) {
		return refreshInventory(db, rs)
	}); err != nil {
		return stats, err
	}

	for _, names := range channelTables {
		eng.InvalidateIndexes(names[0])
		eng.InvalidateIndexes(names[1])
	}
	eng.InvalidateIndexes("inventory")
	return stats, nil
}

// bkIndex builds business key -> row id for a dimension. For history
// keeping dimensions only the current revision (rec_end_date IS NULL)
// is indexed — "the row containing NULL ... is the most current" (§4.2).
func bkIndex(t *storage.Table) map[string]int {
	def := t.Def
	bkCol := def.ColumnIndex(def.BusinessKey)
	endCol := -1
	if def.SCD == schema.HistoryKeeping {
		for i, c := range def.Columns {
			if strings.HasSuffix(c.Name, "rec_end_date") {
				endCol = i
			}
		}
	}
	ix := make(map[string]int, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		if endCol >= 0 && !t.Get(r, endCol).IsNull() {
			continue
		}
		ix[t.Get(r, bkCol).S] = r
	}
	return ix
}

// applyDimUpdates applies the refresh set's dimension changes for one
// SCD class.
func applyDimUpdates(db *storage.DB, rs *RefreshSet, class schema.SCDClass) (int, error) {
	byTable := map[string][]DimUpdate{}
	var tables []string
	for _, u := range rs.DimUpdates {
		if _, ok := byTable[u.Table]; !ok {
			tables = append(tables, u.Table)
		}
		byTable[u.Table] = append(byTable[u.Table], u)
	}
	sort.Strings(tables)
	n := 0
	for _, table := range tables {
		updates := byTable[table]
		t := db.Table(table)
		if t == nil {
			return n, fmt.Errorf("unknown dimension %q", table)
		}
		if t.Def.SCD != class {
			continue
		}
		if t.Def.BusinessKey == "" {
			return n, fmt.Errorf("dimension %q has no business key", table)
		}
		ix := bkIndex(t)
		for _, u := range updates {
			row, ok := ix[u.BusinessKey]
			if !ok {
				return n, fmt.Errorf("%s: business key %q not found", table, u.BusinessKey)
			}
			switch class {
			case schema.NonHistory:
				// Figure 8: update all changed fields in place.
				for col, val := range u.Set {
					ci := t.Def.ColumnIndex(col)
					if ci < 0 {
						return n, fmt.Errorf("%s: no column %q", table, col)
					}
					t.SetValue(row, ci, val)
				}
			case schema.HistoryKeeping:
				// Figure 9: close the current revision, insert a new one.
				if err := insertRevision(t, row, u, rs.UpdateDateSK); err != nil {
					return n, err
				}
			}
			n++
		}
	}
	return n, nil
}

// insertRevision implements Figure 9 for one entity.
func insertRevision(t *storage.Table, row int, u DimUpdate, updateDateSK int64) error {
	def := t.Def
	var startCol, endCol, skCol int
	skCol = def.ColumnIndex(def.PrimaryKey[0])
	for i, c := range def.Columns {
		if strings.HasSuffix(c.Name, "rec_start_date") {
			startCol = i
		}
		if strings.HasSuffix(c.Name, "rec_end_date") {
			endCol = i
		}
	}
	updateDay := storage.DaysFromSK(updateDateSK)
	// Close the current revision.
	t.SetValue(row, endCol, storage.DateV(updateDay))
	// New revision: copy, apply changes, fresh surrogate key, open range.
	newRow := t.Row(row)
	for col, val := range u.Set {
		ci := def.ColumnIndex(col)
		if ci < 0 {
			return fmt.Errorf("%s: no column %q", def.Name, col)
		}
		newRow[ci] = val
	}
	maxSK := int64(0)
	vals, nulls := t.ScanInt64(skCol)
	for i, v := range vals {
		if !nulls[i] && v > maxSK {
			maxSK = v
		}
	}
	newRow[skCol] = storage.Int(maxSK + 1)
	newRow[startCol] = storage.DateV(updateDay)
	newRow[endCol] = storage.Null
	t.Append(newRow)
	return nil
}

// deleteChannel implements the clustered delete: all sales rows sold in
// the range, and all returns whose return date falls in the range.
func deleteChannel(db *storage.DB, channel string, rs *RefreshSet) (int, error) {
	rng, ok := rs.DeleteRange[channel]
	if !ok {
		return 0, nil
	}
	names := channelTables[channel]
	total := 0
	for i, table := range names {
		t := db.Table(table)
		dateCol := 0 // both facts carry their date key in column 0
		_ = i
		var victims []int
		vals, nulls := t.ScanInt64(dateCol)
		for r, v := range vals {
			if !nulls[r] && v >= rng[0] && v <= rng[1] {
				victims = append(victims, r)
			}
		}
		total += t.Delete(victims)
	}
	return total, nil
}

// insertSales implements Figure 10 for one channel's staged sales.
func insertSales(db *storage.DB, channel string, rs *RefreshSet) (int, error) {
	staged := rs.Sales[channel]
	if len(staged) == 0 {
		return 0, nil
	}
	t := db.Table(channelTables[channel][0])
	itemIx := bkIndex(db.Table("item"))
	custIx := bkIndex(db.Table("customer"))
	itemSKs, _ := db.Table("item").ScanInt64(0)
	custSKs, _ := db.Table("customer").ScanInt64(0)
	n := 0
	for _, s := range staged {
		// Figure 10: exchange business keys with surrogate keys; history
		// keeping dimensions resolve to the open revision.
		itRow, ok := itemIx[s.ItemID]
		if !ok {
			return n, fmt.Errorf("%s insert: unknown item %q", channel, s.ItemID)
		}
		cuRow, ok := custIx[s.CustomerID]
		if !ok {
			return n, fmt.Errorf("%s insert: unknown customer %q", channel, s.CustomerID)
		}
		row, err := buildFactRow(t.Def, channel, s, itemSKs[itRow], custSKs[cuRow])
		if err != nil {
			return n, err
		}
		t.Append(row)
		n++
	}
	return n, nil
}

// buildFactRow assembles a full fact row from a staged sale. Derived
// monetary columns keep the generator's consistency rules; optional
// foreign keys not present in the staging data stay NULL.
func buildFactRow(def *schema.Table, channel string, s StagedSale, itemSK, custSK int64) ([]storage.Value, error) {
	row := make([]storage.Value, len(def.Columns))
	set := func(col string, v storage.Value) error {
		ci := def.ColumnIndex(col)
		if ci < 0 {
			return fmt.Errorf("fact %s: no column %s", def.Name, col)
		}
		row[ci] = v
		return nil
	}
	var p string
	switch channel {
	case "store":
		p = "ss"
	case "catalog":
		p = "cs"
	default:
		p = "ws"
	}
	q := float64(s.Quantity)
	ext := s.SalesPrice * q
	extWholesale := s.Wholesale * q
	cols := map[string]storage.Value{
		p + "_sold_date_sk":       storage.Int(s.SoldDateSK),
		p + "_sold_time_sk":       storage.Int(s.SoldTimeSK),
		p + "_item_sk":            storage.Int(itemSK),
		p + "_quantity":           storage.Int(s.Quantity),
		p + "_wholesale_cost":     storage.Float(s.Wholesale),
		p + "_list_price":         storage.Float(s.SalesPrice * 1.2),
		p + "_sales_price":        storage.Float(s.SalesPrice),
		p + "_ext_sales_price":    storage.Float(ext),
		p + "_ext_wholesale_cost": storage.Float(extWholesale),
		p + "_ext_list_price":     storage.Float(ext * 1.2),
		p + "_net_paid":           storage.Float(ext),
		p + "_net_profit":         storage.Float(ext - extWholesale),
	}
	switch channel {
	case "store":
		cols["ss_customer_sk"] = storage.Int(custSK)
		cols["ss_ticket_number"] = storage.Int(s.Order)
	case "catalog":
		cols["cs_bill_customer_sk"] = storage.Int(custSK)
		cols["cs_order_number"] = storage.Int(s.Order)
	default:
		cols["ws_bill_customer_sk"] = storage.Int(custSK)
		cols["ws_order_number"] = storage.Int(s.Order)
	}
	for col, v := range cols {
		if err := set(col, v); err != nil {
			return nil, err
		}
	}
	return row, nil
}

// insertReturns loads staged returns, resolving items like Figure 10.
func insertReturns(db *storage.DB, channel string, rs *RefreshSet) (int, error) {
	staged := rs.Returns[channel]
	if len(staged) == 0 {
		return 0, nil
	}
	t := db.Table(channelTables[channel][1])
	def := t.Def
	itemIx := bkIndex(db.Table("item"))
	itemSKs, _ := db.Table("item").ScanInt64(0)
	var p string
	var orderCol string
	switch channel {
	case "store":
		p, orderCol = "sr", "sr_ticket_number"
	case "catalog":
		p, orderCol = "cr", "cr_order_number"
	default:
		p, orderCol = "wr", "wr_order_number"
	}
	n := 0
	for _, r := range staged {
		itRow, ok := itemIx[r.ItemID]
		if !ok {
			return n, fmt.Errorf("%s returns insert: unknown item %q", channel, r.ItemID)
		}
		row := make([]storage.Value, len(def.Columns))
		set := func(col string, v storage.Value) {
			if ci := def.ColumnIndex(col); ci >= 0 {
				row[ci] = v
			}
		}
		set(p+"_returned_date_sk", storage.Int(r.ReturnedDateSK))
		set(p+"_item_sk", storage.Int(itemSKs[itRow]))
		set(orderCol, storage.Int(r.Order))
		set(p+"_return_quantity", storage.Int(r.Quantity))
		amtCol := p + "_return_amt"
		if channel == "catalog" {
			amtCol = "cr_return_amount"
		}
		set(amtCol, storage.Float(r.Amount))
		t.Append(row)
		n++
	}
	return n, nil
}

// refreshInventory replaces the weekly snapshots falling inside the
// store channel's deleted date range with fresh rows (same weeks, new
// quantities derived from the update date).
func refreshInventory(db *storage.DB, rs *RefreshSet) (int, error) {
	rng, ok := rs.DeleteRange["store"]
	if !ok {
		return 0, nil
	}
	inv := db.Table("inventory")
	vals, nulls := inv.ScanInt64(0)
	var victims []int
	type key struct{ date, item, wh int64 }
	var fresh []key
	for r, v := range vals {
		if !nulls[r] && v >= rng[0] && v <= rng[1] {
			victims = append(victims, r)
			fresh = append(fresh, key{
				date: v,
				item: inv.Get(r, 1).AsInt(),
				wh:   inv.Get(r, 2).AsInt(),
			})
		}
	}
	removed := inv.Delete(victims)
	for i, k := range fresh {
		qty := (k.item*31+k.wh*7+int64(i))%1000 + 1
		inv.Append([]storage.Value{
			storage.Int(k.date), storage.Int(k.item), storage.Int(k.wh), storage.Int(qty),
		})
	}
	return removed + len(fresh), nil
}
