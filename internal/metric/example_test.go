package metric_test

import (
	"fmt"
	"time"

	"tpcds/internal/metric"
)

// The §5.3 worked example: a 1000 scale factor run with the minimum 7
// streams executes 1386 queries; the load time enters at 1% per stream.
func ExampleQphDS() {
	t := metric.Timings{
		Load: 2 * time.Hour,
		QR1:  3 * time.Hour,
		DM:   30 * time.Minute,
		QR2:  3 * time.Hour,
	}
	streams := metric.MinStreams(1000)
	fmt.Printf("streams=%d queries=%d QphDS@1000=%.0f\n",
		streams, metric.TotalQueries(streams), metric.QphDS(1000, streams, t))
	// Output:
	// streams=7 queries=1386 QphDS@1000=208735
}

func ExamplePricePerformance() {
	price := metric.PriceModel{HardwareUSD: 750000, SoftwareUSD: 400000, MaintenanceUSD: 350000}
	fmt.Printf("$%.0f TCO -> %.2f $/QphDS\n",
		price.TCO(), metric.PricePerformance(price.TCO(), 250000))
	// Output:
	// $1500000 TCO -> 6.00 $/QphDS
}
