package metric

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestMinimumStreams pins Figure 12 exactly.
func TestMinimumStreams(t *testing.T) {
	want := map[float64]int{
		100: 3, 300: 5, 1000: 7, 3000: 9, 10000: 11, 30000: 13, 100000: 15,
	}
	for sf, streams := range want {
		if got := MinStreams(sf); got != streams {
			t.Errorf("MinStreams(%v) = %d, Figure 12 says %d", sf, got, streams)
		}
	}
	if MinStreams(0.01) != 1 || MinStreams(1) != 1 {
		t.Error("development scale factors should require 1 stream")
	}
	if MinStreams(500) != 5 {
		t.Errorf("MinStreams(500) = %d, want the 300-tier minimum 5", MinStreams(500))
	}
}

// TestMinStreamsBoundaries table-tests every Figure 12 tier boundary,
// including fractional scale factors just below and above each tier and
// values beyond the largest official tier.
func TestMinStreamsBoundaries(t *testing.T) {
	cases := []struct {
		sf   float64
		want int
	}{
		{0.0005, 1}, {1, 1}, {99, 1}, {99.999, 1},
		{100, 3}, {100.5, 3}, {200, 3}, {299.999, 3},
		{300, 5}, {300.001, 5}, {999.999, 5},
		{1000, 7}, {1000.5, 7}, {2999.9, 7},
		{3000, 9}, {9999.999, 9},
		{10000, 11}, {10000.5, 11}, {29999, 11},
		{30000, 13}, {99999.9, 13},
		{100000, 15}, {100000.5, 15}, {200000, 15}, {1e9, 15},
	}
	for _, c := range cases {
		if got := MinStreams(c.sf); got != c.want {
			t.Errorf("MinStreams(%v) = %d, want %d", c.sf, got, c.want)
		}
	}
}

// TestQueryCountWorkedExample pins the §5.3 prose: "a 1000 scale factor
// benchmark test with minimum number of required query streams executes
// 1386 (198 * 7 streams) queries".
func TestQueryCountWorkedExample(t *testing.T) {
	if got := TotalQueries(MinStreams(1000)); got != 1386 {
		t.Errorf("queries at SF1000 minimum streams = %d, paper says 1386", got)
	}
	if got := TotalQueries(15); got != 2970 {
		t.Errorf("queries at 15 streams = %d, paper says 2970", got)
	}
	if QueriesPerStream != 99 {
		t.Errorf("queries per stream = %d, want 99", QueriesPerStream)
	}
}

// TestQphDSFormula verifies the §5.3 formula term by term.
func TestQphDSFormula(t *testing.T) {
	tm := Timings{
		Load: 1000 * time.Second,
		QR1:  3600 * time.Second,
		DM:   400 * time.Second,
		QR2:  3600 * time.Second,
	}
	sf, streams := 1000.0, 7
	got := QphDS(sf, streams, tm)
	den := 3600.0 + 400 + 3600 + 0.01*7*1000
	want := 1000 * 3600 * float64(198*7) / den
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("QphDS = %v, want %v", got, want)
	}
}

// TestLoadTimeWeighting: the load contributes 0.01*S of its duration —
// with 10 streams exactly 10% (§5.3's example).
func TestLoadTimeWeighting(t *testing.T) {
	base := Timings{QR1: 100 * time.Second, DM: 0, QR2: 100 * time.Second}
	withLoad := base
	withLoad.Load = 1000 * time.Second
	q0 := QphDS(100, 10, base)
	q1 := QphDS(100, 10, withLoad)
	// Denominator grows from 200s to 200+0.01*10*1000 = 300s.
	if ratio := q0 / q1; math.Abs(ratio-1.5) > 1e-9 {
		t.Errorf("load weighting ratio = %v, want 1.5", ratio)
	}
}

// TestMoreStreamsCannotDiluteLoad: scaling streams scales the load
// penalty too, so the relative impact of the load stays constant — the
// §5.3 anti-gaming property.
func TestMoreStreamsCannotDiluteLoad(t *testing.T) {
	perStreamQuery := 100 * time.Second
	load := 10000 * time.Second
	impact := func(streams int) float64 {
		// Query runs scale with stream count on a fixed system.
		tm := Timings{
			Load: load,
			QR1:  time.Duration(streams) * perStreamQuery,
			QR2:  time.Duration(streams) * perStreamQuery,
		}
		den := tm.QR1.Seconds() + tm.QR2.Seconds() + 0.01*float64(streams)*load.Seconds()
		return 0.01 * float64(streams) * load.Seconds() / den
	}
	if math.Abs(impact(3)-impact(30)) > 1e-9 {
		t.Errorf("load impact changed with streams: %v vs %v — dilution possible",
			impact(3), impact(30))
	}
}

func TestQphDSEdgeCases(t *testing.T) {
	if QphDS(0, 3, Timings{QR1: time.Second}) != 0 {
		t.Error("zero SF should yield 0")
	}
	if QphDS(100, 0, Timings{QR1: time.Second}) != 0 {
		t.Error("zero streams should yield 0")
	}
	if QphDS(100, 3, Timings{}) != 0 {
		t.Error("zero time should yield 0, not Inf")
	}
}

func TestValidation(t *testing.T) {
	if err := ValidateScaleFactor(1000); err != nil {
		t.Errorf("SF 1000 should be official: %v", err)
	}
	if err := ValidateScaleFactor(500); err == nil {
		t.Error("SF 500 should be rejected")
	}
	if err := ValidateStreams(1000, 7); err != nil {
		t.Errorf("7 streams at SF1000 should pass: %v", err)
	}
	if err := ValidateStreams(1000, 6); err == nil {
		t.Error("6 streams at SF1000 should fail")
	}
}

func TestPricePerformance(t *testing.T) {
	p := PriceModel{HardwareUSD: 500000, SoftwareUSD: 300000, MaintenanceUSD: 200000}
	if p.TCO() != 1000000 {
		t.Errorf("TCO = %v", p.TCO())
	}
	if got := PricePerformance(p.TCO(), 250000); got != 4 {
		t.Errorf("$/QphDS = %v, want 4", got)
	}
	if PricePerformance(100, 0) != 0 {
		t.Error("zero QphDS should not divide")
	}
}

func TestReport(t *testing.T) {
	tm := Timings{Load: time.Hour, QR1: 2 * time.Hour, DM: 30 * time.Minute, QR2: 2 * time.Hour}
	r := NewReport(1000, 7, tm, PriceModel{HardwareUSD: 1e6})
	if !r.Official {
		t.Error("SF1000/7 streams should be official")
	}
	out := r.String()
	for _, want := range []string{"OFFICIAL", "QphDS@SF", "1386", "$/QphDS@SF"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	dev := NewReport(0.01, 1, tm, PriceModel{})
	if dev.Official {
		t.Error("development SF should not be official")
	}
	if !strings.Contains(dev.String(), "DEVELOPMENT") {
		t.Error("dev report should be marked not publishable")
	}
}

// TestSubsetReport: a run over a template subset computes its metric
// over the queries actually run and can never be publishable — even on
// an otherwise official configuration.
func TestSubsetReport(t *testing.T) {
	tm := Timings{Load: time.Hour, QR1: 2 * time.Hour, DM: 30 * time.Minute, QR2: 2 * time.Hour}
	r := NewReportForQueries(1000, 7, 12, tm, PriceModel{HardwareUSD: 1e6})
	if !r.Subset {
		t.Error("12-template run should be flagged as a subset")
	}
	if r.Official {
		t.Error("subset run must not be publishable, even at SF1000/7 streams")
	}
	if r.QphDS <= 0 {
		t.Error("subset QphDS should still be computed (development diagnostics)")
	}
	// The metric must scale with the queries actually run: 12 of 99
	// templates, identical timings.
	full := NewReport(1000, 7, tm, PriceModel{HardwareUSD: 1e6})
	if ratio := r.QphDS / full.QphDS; math.Abs(ratio-12.0/99.0) > 1e-12 {
		t.Errorf("subset QphDS ratio = %v, want 12/99", ratio)
	}
	out := r.String()
	for _, want := range []string{"DEVELOPMENT", "development only", "12 of 99"} {
		if !strings.Contains(out, want) {
			t.Errorf("subset report missing %q:\n%s", want, out)
		}
	}
	// 2 runs * 12 templates * 7 streams.
	if !strings.Contains(out, "168") {
		t.Errorf("subset report should count 168 executed queries:\n%s", out)
	}
	if got := TotalQueriesFor(7, 12); got != 168 {
		t.Errorf("TotalQueriesFor(7, 12) = %d, want 168", got)
	}
	// The generalized formula agrees with the §5.3 formula on full runs.
	if QphDSForQueries(1000, 7, QueriesPerStream, tm) != QphDS(1000, 7, tm) {
		t.Error("QphDSForQueries(99) disagrees with QphDS")
	}
}

// Property: QphDS is monotone — more elapsed time never increases the
// metric; more streams (at fixed time) never decreases the query count.
func TestQuickQphDSMonotone(t *testing.T) {
	f := func(q1, q2, dm uint16, extra uint8) bool {
		t1 := Timings{
			QR1: time.Duration(q1+1) * time.Second,
			QR2: time.Duration(q2+1) * time.Second,
			DM:  time.Duration(dm) * time.Second,
		}
		t2 := t1
		t2.QR1 += time.Duration(extra) * time.Second
		return QphDS(100, 3, t2) <= QphDS(100, 3, t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIdealScalingNarrative reproduces the §5.3 marketing rationale:
// with SF normalization, a system that takes 10x longer on 10x the data
// reports the SAME QphDS, not a 10x lower one.
func TestIdealScalingNarrative(t *testing.T) {
	small := Timings{QR1: 1000 * time.Second, QR2: 1000 * time.Second}
	big := Timings{QR1: 10000 * time.Second, QR2: 10000 * time.Second}
	qSmall := QphDS(100, 3, small)
	qBig := QphDS(1000, 3, big)
	if math.Abs(qSmall-qBig)/qSmall > 1e-9 {
		t.Errorf("ideal scaling should keep QphDS constant: %v vs %v", qSmall, qBig)
	}
}
