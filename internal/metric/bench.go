package metric

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// BenchSchemaVersion identifies the bench-json artifact layout. Bump it
// on any incompatible change; readers reject versions they don't know,
// so a trajectory directory never silently mixes layouts.
const BenchSchemaVersion = 1

// BenchTemplate is one template's execution-latency summary across all
// streams and both query runs, in nanoseconds.
type BenchTemplate struct {
	ID    int   `json:"id"`
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	MaxNs int64 `json:"max_ns"`
}

// BenchQErrorSummary condenses the plan_qerror_x1000 distribution of a
// profiled run (values are q-error × 1000; 1000 = perfect estimate).
type BenchQErrorSummary struct {
	Count    int64 `json:"count"`
	P50x1000 int64 `json:"p50_x1000"`
	P95x1000 int64 `json:"p95_x1000"`
	Maxx1000 int64 `json:"max_x1000"`
}

// BenchRun is the schema-versioned machine-readable artifact of one
// benchmark run — the unit of the BENCH_*.json performance trajectory.
// Counters marshal with sorted keys (encoding/json map order), so two
// runs of the same seed diff cleanly.
type BenchRun struct {
	SchemaVersion int     `json:"schema_version"`
	SF            float64 `json:"sf"`
	Streams       int     `json:"streams"`
	Seed          uint64  `json:"seed"`
	Planner       string  `json:"planner,omitempty"`
	QphDS         float64 `json:"qphds"`

	LoadNs int64 `json:"load_ns"`
	QR1Ns  int64 `json:"qr1_ns"`
	DMNs   int64 `json:"dm_ns"`
	QR2Ns  int64 `json:"qr2_ns"`

	Templates    []BenchTemplate     `json:"templates"`
	Counters     map[string]int64    `json:"counters,omitempty"`
	QError       *BenchQErrorSummary `json:"qerror,omitempty"`
	Misestimates []Misestimate       `json:"misestimates,omitempty"`
}

// NewBenchRun assembles the artifact from a finished report. Counters
// and the q-error summary are optional extras the caller fills from
// its registry.
func NewBenchRun(rep Report, seed uint64, planner string) BenchRun {
	b := BenchRun{
		SchemaVersion: BenchSchemaVersion,
		SF:            rep.SF,
		Streams:       rep.Streams,
		Seed:          seed,
		Planner:       planner,
		QphDS:         rep.QphDS,
		LoadNs:        rep.Timings.Load.Nanoseconds(),
		QR1Ns:         rep.Timings.QR1.Nanoseconds(),
		DMNs:          rep.Timings.DM.Nanoseconds(),
		QR2Ns:         rep.Timings.QR2.Nanoseconds(),
		Misestimates:  rep.Misestimates,
	}
	for _, l := range rep.Latencies {
		b.Templates = append(b.Templates, BenchTemplate{
			ID: l.ID, Count: l.Count,
			P50Ns: l.P50.Nanoseconds(), P95Ns: l.P95.Nanoseconds(), MaxNs: l.Max.Nanoseconds(),
		})
	}
	sort.Slice(b.Templates, func(i, j int) bool { return b.Templates[i].ID < b.Templates[j].ID })
	return b
}

// WriteBenchJSON writes the artifact as indented JSON (stable field and
// map-key order; trailing newline for line-oriented tools).
func WriteBenchJSON(w io.Writer, b BenchRun) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("metric: encoding bench artifact: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("metric: writing bench artifact: %w", err)
	}
	return nil
}

// ReadBenchJSON parses and validates an artifact.
func ReadBenchJSON(data []byte) (BenchRun, error) {
	var b BenchRun
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchRun{}, fmt.Errorf("metric: bench artifact is not valid JSON: %w", err)
	}
	if err := b.Validate(); err != nil {
		return BenchRun{}, err
	}
	return b, nil
}

// Validate checks the invariants the CI smoke job asserts about an
// artifact: known schema version, sane run parameters, and internally
// consistent per-template summaries.
func (b BenchRun) Validate() error {
	if b.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("metric: bench artifact schema version %d (want %d)",
			b.SchemaVersion, BenchSchemaVersion)
	}
	if b.SF <= 0 {
		return fmt.Errorf("metric: bench artifact has non-positive scale factor %v", b.SF)
	}
	if b.Streams <= 0 {
		return fmt.Errorf("metric: bench artifact has non-positive stream count %d", b.Streams)
	}
	if len(b.Templates) == 0 {
		return fmt.Errorf("metric: bench artifact has no per-template summaries")
	}
	lastID := 0
	for _, t := range b.Templates {
		if t.ID < 1 || t.ID > QueriesPerStream {
			return fmt.Errorf("metric: bench artifact template id %d out of range 1..%d",
				t.ID, QueriesPerStream)
		}
		if t.ID <= lastID {
			return fmt.Errorf("metric: bench artifact template ids not strictly increasing at q%d", t.ID)
		}
		lastID = t.ID
		if t.Count <= 0 {
			return fmt.Errorf("metric: bench artifact q%d has non-positive count %d", t.ID, t.Count)
		}
		if t.P50Ns < 0 || t.P50Ns > t.P95Ns || t.P95Ns > t.MaxNs {
			return fmt.Errorf("metric: bench artifact q%d has inconsistent quantiles p50=%d p95=%d max=%d",
				t.ID, t.P50Ns, t.P95Ns, t.MaxNs)
		}
	}
	return nil
}

// BenchDelta is one template's latency change between two artifacts
// (Ratio = after/before on p50; Regressed marks a ratio beyond the
// comparison threshold).
type BenchDelta struct {
	ID        int
	BeforeP50 time.Duration
	AfterP50  time.Duration
	Ratio     float64
	Regressed bool
}

// CompareBench diffs two artifacts per template: templates present in
// both are compared on p50 exec latency, and a template whose ratio
// exceeds 1+threshold is flagged as a regression (threshold 0.25 =
// "flag anything 25% slower"). Deltas come back sorted worst-first so
// the report leads with the damage.
func CompareBench(before, after BenchRun, threshold float64) []BenchDelta {
	prev := make(map[int]BenchTemplate, len(before.Templates))
	for _, t := range before.Templates {
		prev[t.ID] = t
	}
	var out []BenchDelta
	for _, t := range after.Templates {
		p, ok := prev[t.ID]
		if !ok || p.P50Ns <= 0 {
			continue
		}
		ratio := float64(t.P50Ns) / float64(p.P50Ns)
		out = append(out, BenchDelta{
			ID:        t.ID,
			BeforeP50: time.Duration(p.P50Ns),
			AfterP50:  time.Duration(t.P50Ns),
			Ratio:     ratio,
			Regressed: ratio > 1+threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].ID < out[j].ID
	})
	return out
}
