package metric

import (
	"strings"
	"testing"
	"time"
)

// benchFixture is a minimal valid artifact.
func benchFixture() BenchRun {
	return BenchRun{
		SchemaVersion: BenchSchemaVersion,
		SF:            0.01, Streams: 4, Seed: 42, Planner: "cost", QphDS: 1234.5,
		LoadNs: 100, QR1Ns: 200, DMNs: 50, QR2Ns: 210,
		Templates: []BenchTemplate{
			{ID: 1, Count: 8, P50Ns: 1000, P95Ns: 2000, MaxNs: 3000},
			{ID: 4, Count: 8, P50Ns: 5000, P95Ns: 9000, MaxNs: 12000},
			{ID: 74, Count: 8, P50Ns: 4000, P95Ns: 6000, MaxNs: 7000},
		},
		Counters: map[string]int64{"exec_rows_scanned": 99, "exec_batches": 7},
		QError:   &BenchQErrorSummary{Count: 120, P50x1000: 1400, P95x1000: 41000, Maxx1000: 78000},
	}
}

// TestBenchJSONRoundTrip: the artifact writes, re-reads, and validates;
// the serialization is byte-stable (sorted counter keys included).
func TestBenchJSONRoundTrip(t *testing.T) {
	b := benchFixture()
	var sb1, sb2 strings.Builder
	if err := WriteBenchJSON(&sb1, b); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(&sb2, b); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Error("two writes of the same artifact differ")
	}
	if !strings.HasSuffix(sb1.String(), "\n") {
		t.Error("artifact missing trailing newline")
	}
	// Counter keys marshal sorted.
	out := sb1.String()
	if strings.Index(out, "exec_batches") > strings.Index(out, "exec_rows_scanned") {
		t.Error("counter keys not sorted in output")
	}
	back, err := ReadBenchJSON([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.QphDS != b.QphDS || back.Seed != b.Seed || len(back.Templates) != 3 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.QError == nil || back.QError.P95x1000 != 41000 {
		t.Errorf("q-error summary lost: %+v", back.QError)
	}
}

// TestBenchValidateRejects enumerates the malformed artifacts the CI
// smoke job must catch.
func TestBenchValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchRun)
		want   string
	}{
		{"future schema", func(b *BenchRun) { b.SchemaVersion = BenchSchemaVersion + 1 }, "schema version"},
		{"zero sf", func(b *BenchRun) { b.SF = 0 }, "scale factor"},
		{"zero streams", func(b *BenchRun) { b.Streams = 0 }, "stream count"},
		{"no templates", func(b *BenchRun) { b.Templates = nil }, "no per-template"},
		{"id zero", func(b *BenchRun) { b.Templates[0].ID = 0 }, "out of range"},
		{"id 100", func(b *BenchRun) { b.Templates[2].ID = 100 }, "out of range"},
		{"unsorted ids", func(b *BenchRun) { b.Templates[1].ID = 1 }, "strictly increasing"},
		{"zero count", func(b *BenchRun) { b.Templates[1].Count = 0 }, "non-positive count"},
		{"p50 > p95", func(b *BenchRun) { b.Templates[0].P50Ns = 2500 }, "inconsistent quantiles"},
		{"p95 > max", func(b *BenchRun) { b.Templates[0].P95Ns = 9999 }, "inconsistent quantiles"},
	}
	for _, c := range cases {
		b := benchFixture()
		c.mutate(&b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the artifact", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := benchFixture().Validate(); err != nil {
		t.Errorf("fixture itself invalid: %v", err)
	}
	// ReadBenchJSON rejects both bad JSON and valid JSON failing
	// validation.
	if _, err := ReadBenchJSON([]byte("{")); err == nil {
		t.Error("ReadBenchJSON accepted truncated JSON")
	}
	if _, err := ReadBenchJSON([]byte("{}")); err == nil {
		t.Error("ReadBenchJSON accepted an empty artifact")
	}
}

// TestCompareBenchFlagsRegression injects a synthetic 2x slowdown into
// one template (the CI smoke scenario) and checks exactly that template
// is flagged at the default 25% threshold, with deltas sorted
// worst-first.
func TestCompareBenchFlagsRegression(t *testing.T) {
	before := benchFixture()
	after := benchFixture()
	for i := range after.Templates {
		if after.Templates[i].ID == 4 {
			after.Templates[i].P50Ns *= 2 // synthetic regression
		}
		if after.Templates[i].ID == 74 {
			after.Templates[i].P50Ns = after.Templates[i].P50Ns * 9 / 10 // mild improvement
		}
	}
	deltas := CompareBench(before, after, 0.25)
	if len(deltas) != 3 {
		t.Fatalf("%d deltas, want 3", len(deltas))
	}
	if deltas[0].ID != 4 || !deltas[0].Regressed || deltas[0].Ratio != 2 {
		t.Errorf("worst delta = %+v, want q4 flagged at 2x", deltas[0])
	}
	for _, d := range deltas[1:] {
		if d.Regressed {
			t.Errorf("q%d flagged at ratio %v below threshold", d.ID, d.Ratio)
		}
	}
	if deltas[0].BeforeP50 != 5000*time.Nanosecond || deltas[0].AfterP50 != 10000*time.Nanosecond {
		t.Errorf("delta durations wrong: %+v", deltas[0])
	}
	// Order: worst ratio first.
	for i := 1; i < len(deltas); i++ {
		if deltas[i].Ratio > deltas[i-1].Ratio {
			t.Errorf("deltas out of order at %d: %v after %v", i, deltas[i].Ratio, deltas[i-1].Ratio)
		}
	}

	// Identical artifacts: nothing flagged.
	for _, d := range CompareBench(before, benchFixture(), 0.25) {
		if d.Regressed {
			t.Errorf("identical artifacts flagged q%d", d.ID)
		}
	}
	// Templates only in one artifact are skipped, not crashed on.
	after2 := benchFixture()
	after2.Templates = append(after2.Templates, BenchTemplate{ID: 99, Count: 1, P50Ns: 1, P95Ns: 1, MaxNs: 1})
	if got := len(CompareBench(before, after2, 0.25)); got != 3 {
		t.Errorf("%d deltas with an after-only template, want 3", got)
	}
}
