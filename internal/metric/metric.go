// Package metric implements the TPC-DS primary metrics (§5.3):
//
//	QphDS@SF = SF * 3600 * (198*S) / (T_QR1 + T_DM + T_QR2 + 0.01*S*T_Load)
//
// the price-performance ratio $/QphDS@SF, and the execution-rule
// parameters tied to them: the publishable scale factors and the
// minimum number of concurrent query streams per scale factor
// (Figure 12).
package metric

import (
	"fmt"
	"time"

	"tpcds/internal/queries"
	"tpcds/internal/scaling"
)

// QueriesPerStream is the number of queries one stream executes per
// query run (the 99 templates).
const QueriesPerStream = queries.Count

// minStreams maps each official scale factor to its required minimum
// stream count (Figure 12). Larger systems must not only process more
// data but serve more concurrent users.
var minStreams = map[int]int{
	100:    3,
	300:    5,
	1000:   7,
	3000:   9,
	10000:  11,
	30000:  13,
	100000: 15,
}

// MinStreams returns the minimum required query streams for a scale
// factor: the Figure 12 entry of the largest official tier not above
// sf. Development scale factors below the smallest tier (100) require
// one stream; scale factors above the largest tier keep its minimum.
func MinStreams(sf float64) int {
	tier := 0
	for _, o := range scaling.OfficialScaleFactors {
		if float64(o) <= sf && o > tier {
			tier = o
		}
	}
	if tier == 0 {
		return 1
	}
	return minStreams[tier]
}

// ValidateScaleFactor returns an error unless sf is publishable (§3:
// "Benchmark publications using other scale factors are not valid").
func ValidateScaleFactor(sf float64) error {
	if scaling.IsOfficial(sf) {
		return nil
	}
	return fmt.Errorf("metric: scale factor %v is not an official TPC-DS scale factor %v",
		sf, scaling.OfficialScaleFactors)
}

// ValidateStreams returns an error when the stream count is below the
// Figure 12 minimum for the scale factor.
func ValidateStreams(sf float64, streams int) error {
	min := MinStreams(sf)
	if streams < min {
		return fmt.Errorf("metric: %d streams below the minimum %d required at SF %v",
			streams, min, sf)
	}
	return nil
}

// Timings carries the four measured intervals of the benchmark test
// (Figure 11: load test, Query Run 1, Data Maintenance, Query Run 2).
type Timings struct {
	Load time.Duration
	QR1  time.Duration
	DM   time.Duration
	QR2  time.Duration
}

// TotalQueries is the numerator count: 99 queries times two query runs
// times S streams ("198 * S", §5.3).
func TotalQueries(streams int) int { return 2 * QueriesPerStream * streams }

// TotalQueriesFor generalizes TotalQueries to development runs that
// execute a subset of the templates per stream.
func TotalQueriesFor(streams, perStream int) int { return 2 * perStream * streams }

// QphDS computes the primary performance metric. The load time enters
// at 1% weight per stream — enough to "realistically limit the use of
// auxiliary structures without disallowing them" (§5.3) — and the
// result is normalized to queries per hour and by scale factor.
func QphDS(sf float64, streams int, t Timings) float64 {
	return QphDSForQueries(sf, streams, QueriesPerStream, t)
}

// QphDSForQueries computes the metric with an explicit per-stream query
// count. A run that executes a template subset must use the number it
// actually ran — counting all 99 would inflate the metric — and is
// never publishable.
func QphDSForQueries(sf float64, streams, perStream int, t Timings) float64 {
	if sf <= 0 || streams <= 0 || perStream <= 0 {
		return 0
	}
	den := t.QR1.Seconds() + t.DM.Seconds() + t.QR2.Seconds() +
		0.01*float64(streams)*t.Load.Seconds()
	if den <= 0 {
		return 0
	}
	return sf * 3600 * float64(TotalQueriesFor(streams, perStream)) / den
}

// PricePerformance returns the $/QphDS@SF ratio given the 3-year total
// cost of ownership.
func PricePerformance(tco float64, qphds float64) float64 {
	if qphds <= 0 {
		return 0
	}
	return tco / qphds
}

// PriceModel is a simple 3-year TCO model (§5.3: hardware, software and
// 24x7 maintenance with 4-hour response).
type PriceModel struct {
	HardwareUSD    float64
	SoftwareUSD    float64
	MaintenanceUSD float64 // 3-year total
}

// TCO returns the 3-year total cost of ownership.
func (p PriceModel) TCO() float64 {
	return p.HardwareUSD + p.SoftwareUSD + p.MaintenanceUSD
}

// TemplateLatency summarizes the execution-latency distribution of one
// query template across every stream and both query runs, extracted
// from the driver's per-template obs histograms.
type TemplateLatency struct {
	ID    int
	Count int64
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
}

// Misestimate names the worst-misestimated operator of one query
// template across a profiled run: the profile node with the highest
// q-error (max(est/actual, actual/est), both sides clamped to >= 1).
// Nodes counts how many estimated operator nodes the template
// contributed in total.
type Misestimate struct {
	ID     int     `json:"id"`
	Op     string  `json:"op"`
	Est    float64 `json:"est"`
	Actual int64   `json:"actual"`
	QError float64 `json:"q_error"`
	Nodes  int64   `json:"nodes"`
}

// Report is a publication-style result summary.
type Report struct {
	SF       float64
	Streams  int
	Timings  Timings
	QphDS    float64
	TCO      float64
	PerQphDS float64
	// PerStream is the number of query templates each stream executed
	// per query run (99 for a full run; zero-value reports are treated
	// as full runs).
	PerStream int
	// Subset is true when the run executed fewer than the 99 templates
	// per stream; its QphDS is computed over the queries actually run
	// and is a development-only number.
	Subset bool
	// Official is false for development runs on non-official scale
	// factors, with too few streams, or over a template subset; such
	// results are not publishable.
	Official bool
	// QueryErrors counts query executions that failed (including
	// timeouts); QueryTimeouts counts the subset that hit the per-query
	// deadline. A run with failed queries is never publishable — the
	// §5.2 execution rules require every stream to complete all
	// templates.
	QueryErrors   int
	QueryTimeouts int
	// QueueWait and ExecTime split the wall-clock Duration of every
	// query into time spent waiting at the driver's admission gate and
	// time spent executing in the engine, summed across streams and
	// runs. QueueWait is zero (and unreported) without a concurrency
	// cap.
	QueueWait time.Duration
	ExecTime  time.Duration
	// Latencies is the per-template execution-latency distribution of
	// an instrumented run (empty — and unreported — otherwise).
	Latencies []TemplateLatency
	// Misestimates is the per-template worst-operator q-error table of a
	// profiled run, sorted worst first (empty — and unreported —
	// otherwise). The estimate-vs-actual feedback loop for the planner.
	Misestimates []Misestimate
}

// WithErrorCounts returns a copy of the report carrying per-query
// failure counts. Any failed query invalidates the result for
// publication.
func (r Report) WithErrorCounts(errs, timeouts int) Report {
	r.QueryErrors, r.QueryTimeouts = errs, timeouts
	if errs > 0 {
		r.Official = false
	}
	return r
}

// NewReport assembles a full-run report, computing the metrics and
// validity.
func NewReport(sf float64, streams int, t Timings, price PriceModel) Report {
	return NewReportForQueries(sf, streams, QueriesPerStream, t, price)
}

// NewReportForQueries assembles a report for a run executing perStream
// templates per stream. Subset runs keep an honest QphDS (computed over
// the queries actually run) but are flagged development-only.
func NewReportForQueries(sf float64, streams, perStream int, t Timings, price PriceModel) Report {
	q := QphDSForQueries(sf, streams, perStream, t)
	subset := perStream != QueriesPerStream
	return Report{
		SF: sf, Streams: streams, Timings: t,
		QphDS: q, TCO: price.TCO(), PerQphDS: PricePerformance(price.TCO(), q),
		PerStream: perStream, Subset: subset,
		Official: !subset && ValidateScaleFactor(sf) == nil && ValidateStreams(sf, streams) == nil,
	}
}

// String renders the report in the style of a TPC executive summary.
func (r Report) String() string {
	status := "DEVELOPMENT (not publishable)"
	if r.Official {
		status = "OFFICIAL"
	}
	perStream := r.PerStream
	if perStream == 0 {
		perStream = QueriesPerStream
	}
	qphdsNote := ""
	if r.Subset {
		qphdsNote = fmt.Sprintf(" (subset: %d of %d templates, development only)",
			perStream, QueriesPerStream)
	}
	errLine := ""
	if r.QueryErrors > 0 {
		errLine = fmt.Sprintf("  Query Errors:      %d (%d timed out) — result invalid\n",
			r.QueryErrors, r.QueryTimeouts)
	}
	// The queue/exec split only exists for instrumented runs; reports
	// assembled without it keep the historical layout byte-for-byte.
	splitLine := ""
	if r.ExecTime > 0 {
		splitLine = fmt.Sprintf("  T_Queue / T_Exec:  %v / %v\n",
			r.QueueWait.Round(time.Millisecond), r.ExecTime.Round(time.Millisecond))
	}
	s := fmt.Sprintf(
		"TPC-DS Result [%s]\n"+
			"  Scale Factor:      %v\n"+
			"  Query Streams:     %d (minimum %d)\n"+
			"  Queries Executed:  %d\n"+
			"  T_Load:            %v\n"+
			"  T_QR1:             %v\n"+
			"  T_DM:              %v\n"+
			"  T_QR2:             %v\n"+
			"%s%s"+
			"  QphDS@SF:          %.2f%s\n"+
			"  3yr TCO:           $%.2f\n"+
			"  $/QphDS@SF:        %.4f\n",
		status, r.SF, r.Streams, MinStreams(r.SF), TotalQueriesFor(r.Streams, perStream),
		r.Timings.Load.Round(time.Millisecond), r.Timings.QR1.Round(time.Millisecond),
		r.Timings.DM.Round(time.Millisecond), r.Timings.QR2.Round(time.Millisecond),
		splitLine, errLine, r.QphDS, qphdsNote, r.TCO, r.PerQphDS)
	if len(r.Latencies) > 0 {
		s += "  Per-Template Exec Latency:\n"
		s += "    tmpl  count        p50        p95        max\n"
		for _, l := range r.Latencies {
			s += fmt.Sprintf("    q%-4d %5d %10v %10v %10v\n",
				l.ID, l.Count, l.P50, l.P95, l.Max)
		}
	}
	// Like the latency table, the misestimation table only exists for
	// profiled runs; the summary shows the worst offenders and leaves
	// the full list to the machine-readable artifact.
	if len(r.Misestimates) > 0 {
		n := len(r.Misestimates)
		if n > 10 {
			n = 10
		}
		s += fmt.Sprintf("  Worst Misestimates (top %d of %d templates, by q-error):\n", n, len(r.Misestimates))
		s += "    tmpl   q-error          est       actual  operator\n"
		for _, m := range r.Misestimates[:n] {
			s += fmt.Sprintf("    q%-4d %8.1f %12.0f %12d  %s\n",
				m.ID, m.QError, m.Est, m.Actual, m.Op)
		}
	}
	return s
}
