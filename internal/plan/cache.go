package plan

import (
	"sort"
	"sync"
)

// Cached is one memoized planning decision: the join order (driver
// first), the star-vs-hash choice, and the estimates behind it. The
// executor re-derives everything else (hash tables, bitmaps, filter
// closures) per execution; only the decisions are worth caching.
type Cached struct {
	Order   []int
	Star    bool
	Cost    float64
	EstRows float64
	Source  string
	// StepEst[k] is the cost model's estimated intermediate cardinality
	// after joining Order[k] (StepEst[0] = driver's filtered estimate).
	// It feeds the runtime profile's estimate-vs-actual comparison and
	// never influences execution. Like Order, it is published by
	// Cache.Put and must not be mutated afterwards.
	StepEst []float64
}

type cacheEntry struct {
	plan Cached
	// deps are the base-table names the plan's statistics came from;
	// mutating any of them invalidates the entry. CTE-backed tables are
	// never deps — their identity is already part of the key.
	deps []string
}

// Cache memoizes planning decisions across executions of the same
// statement shape. Keys are built by the executor from the shape
// fingerprint plus everything else the decision depends on (engine
// mode, greedy baseline order, free-set classification), which makes
// entries self-validating: if statistics shift enough to change the
// baseline, the key changes and the stale entry is simply never hit
// again. Safe for concurrent use; the executor calls it from every
// query stream.
type Cache struct {
	mu     sync.Mutex
	m      map[string]cacheEntry
	hits   int64
	misses int64
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]cacheEntry)}
}

// Get looks up a cached plan and counts the hit or miss.
func (c *Cache) Get(key string) (Cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
		return e.plan, true
	}
	c.misses++
	return Cached{}, false
}

// Put stores a plan under key, recording the base tables it depends on.
// Put publishes p and deps: the moment it returns, Get hands them to
// concurrent readers unlocked, so the caller must not modify either
// afterwards. dslint's pubfreeze rule checks every Put call site.
func (c *Cache) Put(key string, p Cached, deps []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = cacheEntry{plan: p, deps: deps}
}

// InvalidateTable drops every cached plan that depends on the named
// base table. The maintenance layer calls this (via the engine's index
// invalidation) after refresh runs mutate a table.
func (c *Cache) InvalidateTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []string
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, d := range c.m[k].deps {
			if d == name {
				delete(c.m, k)
				break
			}
		}
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached plans (tests and diagnostics).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
