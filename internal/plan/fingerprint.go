package plan

import (
	"strconv"
	"strings"

	"tpcds/internal/sql"
)

// Fingerprint renders a parsed statement to a canonical byte string
// usable as a cache key. The engine only ever sees instantiated SQL
// text (qgen substitutes parameters before parsing), so two executions
// of the same template differ only in literals; with keepLiterals
// false every literal collapses to a placeholder (IN lists keep their
// length, which selectivity estimation depends on) and the fingerprint
// identifies the template's shape. With keepLiterals true the
// fingerprint identifies the exact computation — the key
// common-subexpression elimination uses.
//
// Every identifier and literal is length-prefixed, so no combination
// of names can collide the way naive string concatenation does.
func Fingerprint(s *sql.SelectStmt, keepLiterals bool) string {
	var sb strings.Builder
	fp := fingerprinter{sb: &sb, keepLiterals: keepLiterals}
	fp.stmt(s)
	return sb.String()
}

// fingerprinter serializes AST nodes with explicit tags and length
// prefixes.
type fingerprinter struct {
	sb           *strings.Builder
	keepLiterals bool
}

func (f *fingerprinter) tag(t byte)  { f.sb.WriteByte(t) }
func (f *fingerprinter) num(n int)   { f.sb.WriteString(strconv.Itoa(n)); f.sb.WriteByte(';') }
func (f *fingerprinter) boolv(b bool) {
	if b {
		f.sb.WriteByte('1')
	} else {
		f.sb.WriteByte('0')
	}
}

// str writes a length-prefixed string: "<len>:<bytes>".
func (f *fingerprinter) str(s string) {
	f.sb.WriteString(strconv.Itoa(len(s)))
	f.sb.WriteByte(':')
	f.sb.WriteString(s)
}

func (f *fingerprinter) stmt(s *sql.SelectStmt) {
	if s == nil {
		f.tag('_')
		return
	}
	f.tag('S')
	f.num(len(s.With))
	for _, cte := range s.With {
		f.str(cte.Name)
		f.stmt(cte.Select)
	}
	f.boolv(s.Distinct)
	f.num(len(s.Items))
	for _, it := range s.Items {
		f.boolv(it.Star)
		f.str(it.Alias)
		if !it.Star {
			f.expr(it.Expr)
		}
	}
	f.num(len(s.From))
	for _, ref := range s.From {
		f.str(ref.Table)
		f.str(ref.Alias)
		f.boolv(ref.LeftJoin)
		f.expr(ref.On)
	}
	f.expr(s.Where)
	f.num(len(s.GroupBy))
	for _, g := range s.GroupBy {
		f.expr(g)
	}
	f.boolv(s.Rollup)
	f.boolv(s.Cube)
	f.expr(s.Having)
	f.num(len(s.OrderBy))
	for _, oi := range s.OrderBy {
		f.boolv(oi.Desc)
		f.expr(oi.Expr)
	}
	f.num(s.Limit)
	f.num(s.Offset)
	f.stmt(s.UnionAll)
}

func (f *fingerprinter) expr(e sql.Expr) {
	switch v := e.(type) {
	case nil:
		f.tag('_')
	case *sql.ColRef:
		f.tag('c')
		f.str(v.Table)
		f.str(v.Name)
	case *sql.Lit:
		f.tag('l')
		if f.keepLiterals {
			f.str(v.Render())
		} else {
			f.str("?")
		}
	case *sql.BinOp:
		f.tag('b')
		f.str(v.Op)
		f.expr(v.L)
		f.expr(v.R)
	case *sql.UnaryOp:
		f.tag('u')
		f.str(v.Op)
		f.expr(v.X)
	case *sql.Between:
		f.tag('w')
		f.boolv(v.Not)
		f.expr(v.X)
		f.expr(v.Lo)
		f.expr(v.Hi)
	case *sql.In:
		f.tag('i')
		f.boolv(v.Not)
		f.expr(v.X)
		// The list length survives placeholder collapse: IN-list
		// selectivity is count/NDV, so shape identity must include it.
		f.num(len(v.List))
		for _, le := range v.List {
			f.expr(le)
		}
		f.stmt(v.Sub)
	case *sql.Like:
		f.tag('k')
		f.boolv(v.Not)
		f.expr(v.X)
		if f.keepLiterals {
			f.str(v.Pattern)
		} else {
			f.str("?")
		}
	case *sql.IsNull:
		f.tag('n')
		f.boolv(v.Not)
		f.expr(v.X)
	case *sql.CaseExpr:
		f.tag('e')
		f.num(len(v.Whens))
		for _, w := range v.Whens {
			f.expr(w.Cond)
			f.expr(w.Result)
		}
		f.expr(v.Else)
	case *sql.FuncCall:
		f.tag('f')
		f.str(v.Name)
		f.boolv(v.Distinct)
		f.boolv(v.Star)
		f.num(len(v.Args))
		for _, a := range v.Args {
			f.expr(a)
		}
	case *sql.Window:
		f.tag('o')
		f.expr(v.Agg)
		f.num(len(v.PartitionBy))
		for _, p := range v.PartitionBy {
			f.expr(p)
		}
	case *sql.SubQuery:
		f.tag('q')
		f.stmt(v.Select)
	default:
		// Unknown node kinds serialize as their display form; adding an
		// AST node without extending this switch degrades cache/CSE hit
		// quality but never correctness.
		f.tag('x')
		f.str(e.Render())
	}
}
