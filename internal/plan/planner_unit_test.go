package plan

import (
	"math"
	"reflect"
	"testing"

	"tpcds/internal/sql"
)

// testGraph is a 3-table star: driver 0 (1000 filtered rows), pinned
// candidate 1 (100 rows, unknown join NDV → behaves like a key join),
// free candidate 2 (5 rows joining a 1000-NDV driver column, so the
// join filters the intermediate result 200:1).
func testGraph() Graph {
	return Graph{
		Tables: []TableCard{
			{Name: "f", Rows: 2000, Est: 1000},
			{Name: "d1", Rows: 100, Est: 100},
			{Name: "d2", Rows: 5, Est: 5},
		},
		Edges: []Edge{
			{A: 0, B: 1},
			{A: 0, B: 2, NDVA: 1000, NDVB: 5},
		},
	}
}

func TestSearchMovesFreeTableEarly(t *testing.T) {
	jp := Search(SearchInput{
		Graph:           testGraph(),
		Driver:          0,
		Pinned:          []int{1},
		Free:            []int{2},
		GreedyOrder:     []int{0, 1, 2},
		GreedyConnected: true,
	})
	if jp.Source != "dp" {
		t.Fatalf("source = %q, want dp", jp.Source)
	}
	// Joining the selective d2 first shrinks the probe stream before d1.
	if !reflect.DeepEqual(jp.Order, []int{0, 2, 1}) {
		t.Fatalf("order = %v, want [0 2 1]", jp.Order)
	}
	g := testGraph()
	gCost, gCard := g.orderCost(0, []int{1, 2})
	if jp.Cost >= gCost {
		t.Fatalf("dp cost %v not below greedy cost %v", jp.Cost, gCost)
	}
	if math.Abs(jp.EstRows-gCard) > 1e-9 {
		t.Fatalf("est rows %v, want %v (order must not change cardinality)", jp.EstRows, gCard)
	}
}

func TestSearchPreservesPinnedRelativeOrder(t *testing.T) {
	// Both non-driver tables pinned: even though joining the small d2
	// first would be cheaper, the baseline relative order must hold.
	jp := Search(SearchInput{
		Graph:           testGraph(),
		Driver:          0,
		Pinned:          []int{1, 2},
		GreedyOrder:     []int{0, 1, 2},
		GreedyConnected: true,
	})
	if !reflect.DeepEqual(jp.Order, []int{0, 1, 2}) {
		t.Fatalf("order = %v, want pinned baseline [0 1 2]", jp.Order)
	}
}

func TestSearchFallbacks(t *testing.T) {
	base := SearchInput{
		Graph:           testGraph(),
		Driver:          0,
		Free:            []int{1, 2},
		GreedyOrder:     []int{0, 1, 2},
		GreedyConnected: true,
	}

	// Disconnected baseline: returned verbatim.
	in := base
	in.GreedyConnected = false
	if jp := Search(in); jp.Source != "greedy" || !reflect.DeepEqual(jp.Order, []int{0, 1, 2}) {
		t.Fatalf("disconnected baseline: got %+v, want greedy [0 1 2]", jp)
	}

	// Problem too large: 2^n state space declined.
	big := SearchInput{Driver: 0, GreedyConnected: true, GreedyOrder: []int{0}}
	big.Graph.Tables = append(big.Graph.Tables, TableCard{Est: 10})
	for i := 1; i <= dpMaxTables+1; i++ {
		big.Graph.Tables = append(big.Graph.Tables, TableCard{Est: 10})
		big.Graph.Edges = append(big.Graph.Edges, Edge{A: 0, B: i})
		big.Free = append(big.Free, i)
		big.GreedyOrder = append(big.GreedyOrder, i)
	}
	if jp := Search(big); jp.Source != "greedy" {
		t.Fatalf("oversized problem: source %q, want greedy", jp.Source)
	}

	// A table with no join edge: the full DP mask is unreachable.
	in = base
	in.Graph.Edges = in.Graph.Edges[:1] // drop the 0-2 edge
	if jp := Search(in); jp.Source != "greedy" {
		t.Fatalf("edgeless table: source %q, want greedy", jp.Source)
	}

	// Nothing to order.
	in = base
	in.Free = nil
	in.GreedyOrder = []int{0}
	if jp := Search(in); jp.Source != "greedy" || !reflect.DeepEqual(jp.Order, []int{0}) {
		t.Fatalf("driver-only: got %+v", jp)
	}
}

func TestSearchDeterministic(t *testing.T) {
	// All estimates tied: the search must still return one fixed order.
	g := Graph{
		Tables: []TableCard{{Est: 100}, {Est: 10}, {Est: 10}, {Est: 10}},
		Edges:  []Edge{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}},
	}
	in := SearchInput{
		Graph: g, Driver: 0,
		Free:        []int{1, 2, 3},
		GreedyOrder: []int{0, 1, 2, 3}, GreedyConnected: true,
	}
	first := Search(in)
	for i := 0; i < 50; i++ {
		if got := Search(in); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: %+v differs from first %+v", i, got, first)
		}
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache hit")
	}
	p := Cached{Order: []int{0, 2, 1}, Cost: 42, EstRows: 5, Source: "dp"}
	c.Put("k", p, []string{"store_sales", "date_dim"})
	got, ok := c.Get("k")
	if !ok || !reflect.DeepEqual(got, p) {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", h, m)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}

	// Invalidation removes exactly the entries depending on the table.
	c.Put("other", Cached{Source: "greedy"}, []string{"item"})
	c.InvalidateTable("date_dim")
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived invalidation of its dependency")
	}
	if _, ok := c.Get("other"); !ok {
		t.Fatal("unrelated entry was invalidated")
	}
}

func mustParse(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	s, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return s
}

func TestFingerprintCollapsesLiterals(t *testing.T) {
	a := mustParse(t, "SELECT a FROM t WHERE b = 1 AND c > 10")
	b := mustParse(t, "SELECT a FROM t WHERE b = 2 AND c > 99")
	if Fingerprint(a, false) != Fingerprint(b, false) {
		t.Fatal("literal-only difference changed the template fingerprint")
	}
	if Fingerprint(a, true) == Fingerprint(b, true) {
		t.Fatal("keepLiterals=true must distinguish different literals")
	}
	// IN-list length is part of the shape even with literals collapsed.
	short := mustParse(t, "SELECT a FROM t WHERE b IN (1, 2)")
	long := mustParse(t, "SELECT a FROM t WHERE b IN (1, 2, 3)")
	if Fingerprint(short, false) == Fingerprint(long, false) {
		t.Fatal("IN-list length must be part of the fingerprint")
	}
	// Different structure differs.
	c := mustParse(t, "SELECT a FROM t WHERE b = 1 OR c > 10")
	if Fingerprint(a, false) == Fingerprint(c, false) {
		t.Fatal("AND vs OR collided")
	}
}

func TestDecorrelateBasicIn(t *testing.T) {
	orig := mustParse(t, "SELECT a FROM t WHERE b IN (SELECT x FROM s WHERE y > 3)")
	out, n := Decorrelate(orig)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if out == orig {
		t.Fatal("rewrite returned the original pointer")
	}
	// Original untouched (copy-on-write).
	if len(orig.With) != 0 || len(orig.From) != 1 {
		t.Fatalf("original mutated: %d CTEs, %d FROM entries", len(orig.With), len(orig.From))
	}
	if _, ok := orig.Where.(*sql.In); !ok {
		t.Fatal("original WHERE mutated")
	}

	if len(out.With) != 2 {
		t.Fatalf("synthesized %d CTEs, want 2", len(out.With))
	}
	if out.With[0].Name != "__dc_0_s" || out.With[1].Name != "__dc_0" {
		t.Fatalf("CTE names %q, %q", out.With[0].Name, out.With[1].Name)
	}
	dedup := out.With[1].Select
	if !dedup.Distinct {
		t.Fatal("dedup CTE must be DISTINCT (join-key uniqueness)")
	}
	if isn, ok := dedup.Where.(*sql.IsNull); !ok || !isn.Not {
		t.Fatal("dedup CTE must filter IS NOT NULL")
	}
	if len(out.From) != 2 || out.From[1].Table != "__dc_0" {
		t.Fatalf("FROM = %+v, want t plus __dc_0", out.From)
	}
	eq, ok := out.Where.(*sql.BinOp)
	if !ok || eq.Op != "=" {
		t.Fatalf("WHERE rewrote to %T, want = predicate", out.Where)
	}
	r, ok := eq.R.(*sql.ColRef)
	if !ok || r.Table != "__dc_0" || r.Name != "__dc_v" {
		t.Fatalf("join column = %+v", eq.R)
	}
}

func TestDecorrelateExclusions(t *testing.T) {
	for _, q := range []string{
		// NOT IN: NULL semantics have no join equivalent.
		"SELECT a FROM t WHERE b NOT IN (SELECT x FROM s)",
		// LHS is not a plain column.
		"SELECT a FROM t WHERE b + 1 IN (SELECT x FROM s)",
		// Subquery carries LIMIT.
		"SELECT a FROM t WHERE b IN (SELECT x FROM s LIMIT 5)",
		// Subquery is a UNION ALL head.
		"SELECT a FROM t WHERE b IN (SELECT x FROM s UNION ALL SELECT x FROM u)",
		// No subquery at all.
		"SELECT a FROM t WHERE b IN (1, 2, 3)",
		// IN under OR is not a top-level conjunct.
		"SELECT a FROM t WHERE a = 0 OR b IN (SELECT x FROM s)",
	} {
		orig := mustParse(t, q)
		out, n := Decorrelate(orig)
		if n != 0 {
			t.Errorf("%s: rewrote %d predicates, want 0", q, n)
		}
		if out != orig {
			t.Errorf("%s: returned a copy for a no-op rewrite", q)
		}
	}
}

func TestDecorrelateNestedAndUnion(t *testing.T) {
	// Nested IN inside the IN subquery: both rewritten; the inner
	// rewrite lands in the inner statement's own WITH scope.
	out, n := Decorrelate(mustParse(t,
		"SELECT a FROM t WHERE b IN (SELECT x FROM s WHERE y IN (SELECT z FROM u))"))
	if n != 2 {
		t.Fatalf("nested: n = %d, want 2", n)
	}
	if len(out.With) != 2 {
		t.Fatalf("nested: head has %d CTEs, want 2", len(out.With))
	}
	inner := out.With[0].Select // __dc_N_s wraps the rewritten subquery
	if len(inner.With) != 2 {
		t.Fatalf("nested: inner statement has %d CTEs, want 2", len(inner.With))
	}

	// Union blocks share the head's WITH scope.
	out, n = Decorrelate(mustParse(t,
		"SELECT a FROM t WHERE b IN (SELECT x FROM s) UNION ALL SELECT a FROM t2 WHERE b IN (SELECT x FROM s2)"))
	if n != 2 {
		t.Fatalf("union: n = %d, want 2", n)
	}
	if len(out.With) != 4 {
		t.Fatalf("union: head has %d CTEs, want all 4", len(out.With))
	}
	if out.UnionAll == nil || len(out.UnionAll.With) != 0 {
		t.Fatal("union: block CTEs must attach to the head")
	}

	// Existing CTEs stay first (materialization order).
	out, n = Decorrelate(mustParse(t,
		"WITH w AS (SELECT x FROM s) SELECT a FROM t WHERE b IN (SELECT x FROM w)"))
	if n != 1 {
		t.Fatalf("with: n = %d, want 1", n)
	}
	if len(out.With) != 3 || out.With[0].Name != "w" {
		t.Fatalf("with: CTE order %v", []string{out.With[0].Name, out.With[1].Name, out.With[2].Name})
	}
}
