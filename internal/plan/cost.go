package plan

import "fmt"

// The cost model. Costs are abstract units tuned for THIS executor,
// where the dominant asymmetry is columnar work vs wide-row
// materialization: a vectorized scan or hash-table lookup touches a
// row for nanoseconds, while materializing one wide intermediate row
// (a fresh []storage.Value across every joined table's span, filled
// and later garbage-collected) costs on the order of a thousand
// column-touches. Bitmap and hash indexes are cached across queries,
// so the star transformation's per-query cost is the dimension key-set
// scans plus fetching only the qualifying fact rows — not the index
// builds. The absolute scale is meaningless; only ratios steer
// decisions, and the greedy-vs-cost ablation benchmark
// (BenchmarkAblationGreedyVsCost, EXPERIMENTS.md) checks the decisions
// against measured per-template latencies.
const (
	// costScan is charged per build-side row scanned: filtering a
	// table's rows for a hash build walks the whole column regardless
	// of how few survive — the same full columnar scan the star
	// transformation's key-set pass is charged for (costBitmap).
	costScan = 1.0
	// costBuild is charged per surviving row inserted into a hash-join
	// build table.
	costBuild = 1.0
	// costProbe is charged per hash-table lookup (no materialization).
	costProbe = 0.2
	// costMaterialize is charged per wide intermediate row
	// materialized: the driver scan's surviving rows, every join step's
	// output rows, and the star transformation's qualifying fact-row
	// fetches.
	costMaterialize = 50.0
	// costBitmap is charged per dimension row scanned while building
	// the star transformation's per-dimension key sets (the fact-side
	// bitmap indexes are cached across queries).
	costBitmap = 1.0
)

// TableCard is one joinable table as the planner sees it: its raw row
// count and its estimated cardinality after local filters.
type TableCard struct {
	Name string
	Rows int
	Est  float64
}

// Edge is one equi-join edge between tables A and B (indexes into the
// Graph's Tables). NDVA/NDVB are the distinct-value counts of the join
// columns on each side; 0 means unknown.
type Edge struct {
	A, B       int
	NDVA, NDVB float64
}

// Graph is the join graph the planner searches: tables, equi-join
// edges, and the driver the execution engine pins (see SearchInput).
type Graph struct {
	Tables []TableCard
	Edges  []Edge
}

// joinCard estimates the cardinality of joining an intermediate result
// of curCard rows (covering the tables in mask ∪ {driver}) with table
// t: the textbook |L⋈R| = |L|·|R| / max(V(L,a),V(R,b)) per connecting
// edge. inMask reports which tables the intermediate covers.
func (g *Graph) joinCard(curCard float64, inMask func(int) bool, t int) float64 {
	est := g.Tables[t].Est
	out := curCard * est
	for _, e := range g.Edges {
		var ndv float64
		switch {
		case e.A == t && inMask(e.B):
			ndv = maxf(e.NDVA, e.NDVB)
		case e.B == t && inMask(e.A):
			ndv = maxf(e.NDVA, e.NDVB)
		default:
			continue
		}
		if ndv < 1 {
			// Unknown NDV: assume the larger side's filtered estimate is
			// all-distinct — conservative for key/foreign-key joins.
			ndv = maxf(est, 1)
		}
		out /= ndv
	}
	if out < 0 {
		out = 0
	}
	return out
}

// orderCost walks a join order (table indexes, driver excluded) and
// returns its total cost and final cardinality under the model: the
// driver scan materializes its surviving rows wide, then each step
// builds the next table's filtered rows into a hash table, probes it
// with every intermediate row, and materializes the join's output.
func (g *Graph) orderCost(driver int, order []int) (cost, card float64) {
	card = g.Tables[driver].Est
	cost = card * costMaterialize // driver scan materializes wide rows
	joined := make([]bool, len(g.Tables))
	joined[driver] = true
	for _, t := range order {
		est := g.Tables[t].Est
		out := g.joinCard(card, func(i int) bool { return joined[i] }, t)
		cost += float64(g.Tables[t].Rows)*costScan + est*costBuild +
			card*costProbe + out*costMaterialize
		card = out
		joined[t] = true
	}
	return cost, card
}

// StepCards returns the per-step view of orderCost's cardinality walk
// for a full join order (driver first): StepCards(order)[0] is the
// driver's filtered estimate, StepCards(order)[k] the estimated
// intermediate cardinality after joining order[k]. Exported so the
// executor can thread the plan's estimates into the runtime profile
// (estimate-vs-actual q-error) without re-running the search.
func (g *Graph) StepCards(order []int) []float64 {
	if len(order) == 0 {
		return nil
	}
	driver := order[0]
	out := make([]float64, len(order))
	card := g.Tables[driver].Est
	out[0] = card
	joined := make([]bool, len(g.Tables))
	joined[driver] = true
	for k, t := range order[1:] {
		card = g.joinCard(card, func(i int) bool { return joined[i] }, t)
		joined[t] = true
		out[k+1] = card
	}
	return out
}

// EstimateStarCost estimates executing a star-shaped query via the
// bitmap star transformation: scan each dimension to build its key set
// (the fact bitmaps are cached), intersect, then materialize only the
// qualifying fact rows, resolving each dimension by key lookup.
func EstimateStarCost(shape StarShape) float64 {
	cost := 0.0
	for _, d := range shape.Dims {
		cost += float64(d.Rows) * costBitmap
	}
	qual := shape.CombinedSelectivity() * float64(shape.FactRows)
	cost += qual * (costMaterialize + costProbe*float64(len(shape.Dims)))
	return cost
}

// ChooseCost picks the physical strategy from estimated costs — the
// cost planner's replacement for the fixed selectivity threshold of
// Choose. Mode constraints win over estimates, and ineligible shapes
// always take the hash pipeline.
func ChooseCost(shape StarShape, hashCost float64, mode Mode) Decision {
	sel := shape.CombinedSelectivity()
	switch mode {
	case ForceHashJoin:
		return Decision{HashJoinPipeline, "forced by mode", sel}
	case ForceStar:
		if shape.Eligible() {
			return Decision{StarTransform, "forced by mode", sel}
		}
		return Decision{HashJoinPipeline, "star shape not eligible", sel}
	}
	if !shape.Eligible() {
		return Decision{HashJoinPipeline, "star shape not eligible", sel}
	}
	starCost := EstimateStarCost(shape)
	if starCost < hashCost {
		return Decision{StarTransform,
			fmt.Sprintf("estimated star cost %.0f below hash cost %.0f", starCost, hashCost), sel}
	}
	return Decision{HashJoinPipeline,
		fmt.Sprintf("estimated hash cost %.0f below star cost %.0f", hashCost, starCost), sel}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
