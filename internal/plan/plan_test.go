package plan

import "testing"

func shape(factRows int, dims ...DimInfo) StarShape {
	return StarShape{FactName: "store_sales", FactRows: factRows, Dims: dims}
}

func TestEligibility(t *testing.T) {
	// No dimensions: not a star.
	if shape(1000000).Eligible() {
		t.Error("empty dim list should not be eligible")
	}
	// Non-PK join disqualifies.
	s := shape(1000000, DimInfo{Name: "item", Rows: 100, FilteredRows: 10, PKJoin: false})
	if s.Eligible() {
		t.Error("non-PK join should disqualify star")
	}
	// A dimension whose qualifying rows rival the fact disqualifies.
	s = shape(1000, DimInfo{Name: "big", Rows: 1000, FilteredRows: 900, PKJoin: true})
	if s.Eligible() {
		t.Error("barely-filtered oversized dimension should disqualify star")
	}
	// A large dimension with a selective filter stays eligible (the
	// calendar dimension case at development scale).
	s = shape(1000, DimInfo{Name: "date_dim", Rows: 73049, FilteredRows: 30, PKJoin: true})
	if !s.Eligible() {
		t.Error("selectively filtered large dimension should stay eligible")
	}
	// No filtered dimension: bitmap intersection is pointless.
	s = shape(1000000, DimInfo{Name: "date_dim", Rows: 100, FilteredRows: 100, PKJoin: true})
	if s.Eligible() {
		t.Error("unfiltered star should not be eligible")
	}
	// The good case.
	s = shape(1000000,
		DimInfo{Name: "date_dim", Rows: 1000, FilteredRows: 30, PKJoin: true},
		DimInfo{Name: "item", Rows: 500, FilteredRows: 500, PKJoin: true})
	if !s.Eligible() {
		t.Error("classic star shape should be eligible")
	}
}

func TestCombinedSelectivity(t *testing.T) {
	s := shape(1000000,
		DimInfo{Rows: 100, FilteredRows: 10, PKJoin: true},
		DimInfo{Rows: 100, FilteredRows: 50, PKJoin: true})
	if got := s.CombinedSelectivity(); got != 0.05 {
		t.Errorf("combined selectivity = %v, want 0.05", got)
	}
	if (DimInfo{}).Selectivity() != 1 {
		t.Error("zero-row dimension should have selectivity 1")
	}
}

func TestChooseBySelectivity(t *testing.T) {
	selective := shape(1000000,
		DimInfo{Name: "date_dim", Rows: 1000, FilteredRows: 10, PKJoin: true})
	d := Choose(selective, Auto)
	if d.Strategy != StarTransform {
		t.Errorf("selective star chose %v (%s)", d.Strategy, d.Reason)
	}
	broad := shape(1000000,
		DimInfo{Name: "date_dim", Rows: 1000, FilteredRows: 900, PKJoin: true})
	d = Choose(broad, Auto)
	if d.Strategy != HashJoinPipeline {
		t.Errorf("broad star chose %v (%s)", d.Strategy, d.Reason)
	}
}

func TestChooseForcedModes(t *testing.T) {
	s := shape(1000000,
		DimInfo{Name: "date_dim", Rows: 1000, FilteredRows: 10, PKJoin: true})
	if d := Choose(s, ForceHashJoin); d.Strategy != HashJoinPipeline {
		t.Errorf("ForceHashJoin chose %v", d.Strategy)
	}
	if d := Choose(s, ForceStar); d.Strategy != StarTransform {
		t.Errorf("ForceStar chose %v", d.Strategy)
	}
	// ForceStar on an ineligible shape (non-PK join) falls back.
	bad := shape(100000, DimInfo{Name: "d", Rows: 99, FilteredRows: 1, PKJoin: false})
	if d := Choose(bad, ForceStar); d.Strategy != HashJoinPipeline {
		t.Errorf("ineligible ForceStar should fall back to hash join, got %v", d.Strategy)
	}
}

func TestSelectivityEstimates(t *testing.T) {
	order := []string{"eq", "isnull", "in", "between", "like", "other"}
	prev := 0.0
	for _, k := range order {
		s := EstimateFilterSelectivity(k)
		if s <= 0 || s > 1 {
			t.Errorf("selectivity(%s) = %v out of (0,1]", k, s)
		}
		if s < prev {
			t.Errorf("selectivity(%s) = %v breaks monotone ordering", k, s)
		}
		prev = s
	}
}

func TestStrings(t *testing.T) {
	if Auto.String() != "auto" || ForceStar.String() != "force-star" ||
		ForceHashJoin.String() != "force-hash-join" {
		t.Error("Mode.String broken")
	}
	if StarTransform.String() != "star-transform" || HashJoinPipeline.String() != "hash-join" {
		t.Error("Strategy.String broken")
	}
}
