package plan

import (
	"fmt"

	"tpcds/internal/sql"
)

// Subquery decorrelation: rewriting `col IN (SELECT item FROM ...)`
// predicates into joins against a deduplicated CTE. The executor's
// nested evaluation runs the subquery once and builds a value set, so
// the win is not avoiding re-execution — it is making the membership
// test visible to the planner as a join edge, where it participates in
// cardinality estimation, join-order search, and star detection
// instead of being an opaque black-box filter.
//
// The rewrite of `x IN (SELECT e FROM ...)` (x a plain column, no NOT)
// synthesizes two CTEs and a join:
//
//	__dc_N_s AS (<subquery, its single item aliased __dc_v if unnamed>)
//	__dc_N   AS (SELECT DISTINCT __dc_v FROM __dc_N_s WHERE __dc_v IS NOT NULL)
//	... FROM ..., __dc_N WHERE ... x = __dc_N.__dc_v ...
//
// The two-step form leaves the subquery's own execution untouched;
// only the trivial dedup select is new. Correctness:
//
//   - DISTINCT makes the join key unique, so the join matches each
//     outer row at most once — it filters, never multiplies, exactly
//     like the IN predicate. (Uniqueness also makes the statistics
//     classify the table as order-free; see Search.)
//   - IS NOT NULL: `x IN (set)` is never satisfied by NULL list values
//     (with a NULL x the predicate is NULL, i.e. filtered), and an
//     equi-join never matches NULL keys either way, so dropping NULLs
//     from the set changes nothing — while guarding against any join
//     implementation that would bucket NULLs together.
//   - NOT IN is excluded: its NULL semantics (any NULL in the set
//     rejects every row) have no join equivalent.
//
// Scalar subqueries need no decorrelation in this engine: the binder
// runs an uncorrelated `(SELECT ...)` once and folds it to a literal
// (correlated references fail binding — the subset has no correlation),
// and common-subexpression elimination dedupes repeats.
//
// Everything is copy-on-write: RunContext callers own their parsed
// statement, so shared nodes are never mutated — rewritten paths are
// shallow-copied from the leaf up, and an unchanged tree returns the
// original pointer.

// DecorrPrefix names decorrelation-synthesized CTEs. The executor
// keeps such tables out of driver selection so the rewrite can never
// change the join pipeline's driver (and with it the output order).
const DecorrPrefix = "__dc_"

// decorrValue is the output column name forced onto the subquery's
// item when it has no alias.
const decorrValue = "__dc_v"

// Decorrelate rewrites eligible IN-subquery predicates throughout a
// statement tree (head, union blocks, CTE bodies, nested IN
// subqueries). It returns the rewritten statement and the number of
// predicates rewritten; when nothing matches, the input pointer is
// returned unchanged.
func Decorrelate(s *sql.SelectStmt) (*sql.SelectStmt, int) {
	d := &decorrelator{}
	out, _ := d.root(s)
	return out, d.n
}

type decorrelator struct {
	// n counts rewrites and numbers synthesized CTEs uniquely across
	// the whole statement tree.
	n int
}

// root rewrites one statement that owns a WITH list: the top-level
// statement, a CTE body, or an IN subquery. Synthesized CTEs from the
// head and every union block attach here — union blocks share the
// head's WITH scope (the executor clears per-block WITH lists).
func (d *decorrelator) root(s *sql.SelectStmt) (*sql.SelectStmt, bool) {
	if s == nil {
		return nil, false
	}
	var synth []sql.CTE
	out, changed := d.chain(s, &synth)
	if len(synth) > 0 {
		// chain already copied out when it produced synth CTEs.
		// Synthesized CTEs go after existing ones: WITH materializes in
		// order and the subquery may reference earlier CTEs.
		out.With = append(append([]sql.CTE{}, out.With...), synth...)
	}
	return out, changed
}

// chain rewrites a statement and its UNION ALL continuations,
// accumulating synthesized CTEs into synth.
func (d *decorrelator) chain(s *sql.SelectStmt, synth *[]sql.CTE) (*sql.SelectStmt, bool) {
	if s == nil {
		return nil, false
	}
	out := s
	changed := false
	cow := func() *sql.SelectStmt {
		if out == s {
			c := *s
			out = &c
		}
		return out
	}

	for i := range s.With {
		if ns, ch := d.root(s.With[i].Select); ch {
			c := cow()
			if len(c.With) > 0 && &c.With[0] == &s.With[0] {
				c.With = append([]sql.CTE{}, s.With...)
			}
			c.With[i].Select = ns
			changed = true
		}
	}

	var from []sql.TableRef
	if nw, ch := d.conj(s.Where, &from, synth); ch {
		c := cow()
		c.Where = nw
		c.From = append(append([]sql.TableRef{}, s.From...), from...)
		changed = true
	}

	if nu, ch := d.chain(s.UnionAll, synth); ch {
		cow().UnionAll = nu
		changed = true
	}
	return out, changed
}

// conj walks a WHERE tree's top-level AND structure. Matching IN
// conjuncts become equality predicates (appending the join table to
// from and the CTE pair to synth); non-matching IN subqueries are
// still recursed into as independent roots.
func (d *decorrelator) conj(e sql.Expr, from *[]sql.TableRef, synth *[]sql.CTE) (sql.Expr, bool) {
	switch v := e.(type) {
	case *sql.BinOp:
		if v.Op != "AND" {
			return e, false
		}
		l, lch := d.conj(v.L, from, synth)
		r, rch := d.conj(v.R, from, synth)
		if !lch && !rch {
			return e, false
		}
		return &sql.BinOp{Op: "AND", L: l, R: r}, true
	case *sql.In:
		if v.Sub == nil {
			return e, false
		}
		if eq, ok := d.rewriteIn(v, from, synth); ok {
			return eq, true
		}
		// Not eligible at this level — still decorrelate inside it.
		if ns, ch := d.root(v.Sub); ch {
			c := *v
			c.Sub = ns
			return &c, true
		}
		return e, false
	default:
		return e, false
	}
}

// rewriteIn applies the CTE rewrite to one eligible IN conjunct.
func (d *decorrelator) rewriteIn(in *sql.In, from *[]sql.TableRef, synth *[]sql.CTE) (sql.Expr, bool) {
	if _, ok := in.X.(*sql.ColRef); !ok || in.Not || in.Sub == nil || len(in.List) > 0 {
		return nil, false
	}
	sub := in.Sub
	// Only plain single-item subqueries: LIMIT/OFFSET and UNION ALL
	// heads carry result-shaping the CTE rewrite must not re-order, and
	// a starred item has no single value column.
	if sub.Limit != -1 || sub.Offset != 0 || sub.UnionAll != nil ||
		len(sub.Items) != 1 || sub.Items[0].Star {
		return nil, false
	}

	// Decorrelate inside the subquery first so its own rewrites land in
	// its own WITH scope.
	sub, _ = d.root(sub)
	alias := sub.Items[0].Alias
	if alias == "" {
		alias = decorrValue
		c := *sub
		c.Items = append([]sql.SelectItem{}, sub.Items...)
		c.Items[0].Alias = alias
		sub = &c
	}

	subName := fmt.Sprintf("%s%d_s", DecorrPrefix, d.n)
	setName := fmt.Sprintf("%s%d", DecorrPrefix, d.n)
	d.n++
	valCol := func() *sql.ColRef { return &sql.ColRef{Name: alias} }
	dedup := &sql.SelectStmt{
		Distinct: true,
		Items:    []sql.SelectItem{{Expr: valCol()}},
		From:     []sql.TableRef{{Table: subName}},
		Where:    &sql.IsNull{X: valCol(), Not: true},
		Limit:    -1,
	}
	*synth = append(*synth, sql.CTE{Name: subName, Select: sub}, sql.CTE{Name: setName, Select: dedup})
	*from = append(*from, sql.TableRef{Table: setName})
	return &sql.BinOp{Op: "=", L: in.X, R: &sql.ColRef{Table: setName, Name: alias}}, true
}
