// Package plan implements the optimizer decision layer of the engine:
// given table statistics and the join shape of a bound query, it picks
// between the two physical strategies the paper singles out (§2.1) —
// the star transformation (bitmap accesses, bitmap merges, bitmap joins)
// natural to star schemas, and the hash-join pipeline natural to 3NF —
// "this seems to be an area in which today's query optimizers have huge
// deficits." The executor consults this package and the ablation
// benchmark sweeps its crossover.
package plan

import (
	"fmt"
	"runtime"
)

// Parallelism resolves a configured parallelism knob to a worker count
// for morsel-driven execution: values <= 0 mean "use every core"
// (runtime.NumCPU), 1 forces serial execution, higher values are taken
// as-is. The executor, the driver and both CLIs share this rule.
func Parallelism(configured int) int {
	if configured <= 0 {
		return runtime.NumCPU()
	}
	return configured
}

// PlannerKind selects the join planner. CostBased (the default) builds
// statistics into cardinality estimates, searches join orders under
// order-safety constraints, decides star-vs-hash from estimated cost
// and caches plans; Greedy is the original fixed heuristic, kept as
// the differential baseline ("when greedy beats optimal" is an
// empirical question the benchmark answers per template). Results are
// bit-identical under either planner.
type PlannerKind int

const (
	// CostBased plans with the cost model, join-order search and plan
	// cache.
	CostBased PlannerKind = iota
	// Greedy plans with the fixed heuristic: largest estimated fact
	// drives, smallest estimated connected table joins next.
	Greedy
)

func (k PlannerKind) String() string {
	if k == Greedy {
		return "greedy"
	}
	return "cost"
}

// ParsePlanner converts a CLI/driver knob value to a PlannerKind; the
// empty string selects the default (cost-based).
func ParsePlanner(s string) (PlannerKind, error) {
	switch s {
	case "", "cost":
		return CostBased, nil
	case "greedy":
		return Greedy, nil
	}
	return CostBased, fmt.Errorf("unknown planner %q (want cost or greedy)", s)
}

// Mode constrains the strategy choice; Auto lets the cost heuristic
// decide. The ablation benchmark forces each mode in turn.
type Mode int

const (
	// Auto picks the cheaper strategy by heuristic.
	Auto Mode = iota
	// ForceHashJoin always uses the hash-join pipeline.
	ForceHashJoin
	// ForceStar always uses the star transformation when the query
	// shape permits (falls back to hash joins otherwise).
	ForceStar
)

func (m Mode) String() string {
	switch m {
	case ForceHashJoin:
		return "force-hash-join"
	case ForceStar:
		return "force-star"
	default:
		return "auto"
	}
}

// Strategy is the chosen physical join strategy.
type Strategy int

const (
	// HashJoinPipeline builds hash tables on filtered dimensions and
	// probes with the driver table.
	HashJoinPipeline Strategy = iota
	// StarTransform intersects per-dimension fact bitmaps, then fetches
	// qualifying fact rows and joins dimensions by surrogate-key lookup.
	StarTransform
)

func (s Strategy) String() string {
	if s == StarTransform {
		return "star-transform"
	}
	return "hash-join"
}

// DimInfo summarizes one dimension join as seen by the optimizer.
type DimInfo struct {
	Name string
	// Rows is the unfiltered dimension cardinality.
	Rows int
	// FilteredRows estimates rows surviving the dimension's local
	// predicates.
	FilteredRows int
	// PKJoin is true when the join is fact.fk = dim.pk — the shape the
	// star transformation requires.
	PKJoin bool
}

// Selectivity of the dimension's predicates (1 = unfiltered).
func (d DimInfo) Selectivity() float64 {
	if d.Rows == 0 {
		return 1
	}
	return float64(d.FilteredRows) / float64(d.Rows)
}

// StarShape describes a candidate star query: one fact table joined to
// dimensions.
type StarShape struct {
	FactName string
	FactRows int
	Dims     []DimInfo
}

// Eligible reports whether the star transformation is applicable at
// all: every dimension joined on its primary key, at least one filtered
// dimension to make bitmap intersection worthwhile, and no dimension
// whose *qualifying* row set rivals the fact itself (building the
// key-lookup side over such a "dimension" costs more than streaming a
// hash join; the calendar dimension with a month predicate qualifies a
// handful of rows no matter how it compares to the fact unfiltered).
func (s StarShape) Eligible() bool {
	if len(s.Dims) == 0 {
		return false
	}
	anyFiltered := false
	for _, d := range s.Dims {
		if !d.PKJoin {
			return false
		}
		if d.FilteredRows*4 > s.FactRows && d.FilteredRows > 64 {
			return false
		}
		if d.FilteredRows < d.Rows {
			anyFiltered = true
		}
	}
	return anyFiltered
}

// CombinedSelectivity multiplies the per-dimension selectivities — the
// estimated fraction of fact rows surviving the bitmap intersection.
func (s StarShape) CombinedSelectivity() float64 {
	sel := 1.0
	for _, d := range s.Dims {
		sel *= d.Selectivity()
	}
	return sel
}

// starSelectivityThreshold is the crossover the Choose heuristic uses:
// when the dimensions filter the fact below this fraction, touching only
// the matching fact rows (random access through bitmaps) beats streaming
// the whole fact through hash probes (sequential access). The ablation
// benchmark (BenchmarkAblationStarVsHashJoin) locates the empirical
// crossover; 10-20% is typical for in-memory columnar scans.
const starSelectivityThreshold = 0.15

// Decision is the optimizer's output, kept explainable for EXPLAIN-style
// reporting and tests.
type Decision struct {
	Strategy    Strategy
	Reason      string
	Selectivity float64
}

// Choose picks the physical strategy for a star-shaped query under the
// given mode.
func Choose(shape StarShape, mode Mode) Decision {
	sel := shape.CombinedSelectivity()
	switch mode {
	case ForceHashJoin:
		return Decision{HashJoinPipeline, "forced by mode", sel}
	case ForceStar:
		if shape.Eligible() {
			return Decision{StarTransform, "forced by mode", sel}
		}
		return Decision{HashJoinPipeline, "star shape not eligible", sel}
	}
	if !shape.Eligible() {
		return Decision{HashJoinPipeline, "star shape not eligible", sel}
	}
	if sel <= starSelectivityThreshold {
		return Decision{StarTransform,
			fmt.Sprintf("combined dimension selectivity %.4f below threshold %.2f",
				sel, starSelectivityThreshold), sel}
	}
	return Decision{HashJoinPipeline,
		fmt.Sprintf("combined dimension selectivity %.4f above threshold %.2f",
			sel, starSelectivityThreshold), sel}
}

// EstimateFilterSelectivity is the textbook heuristic the binder uses
// for local predicates when no value-level statistics are available.
// Kind strings match the predicate forms of the SQL subset.
func EstimateFilterSelectivity(kind string) float64 {
	switch kind {
	case "eq":
		return 0.05
	case "in":
		return 0.15
	case "between", "range":
		return 0.25
	case "like":
		return 0.4
	case "isnull":
		return 0.1
	default:
		return 0.5
	}
}
