package plan

import "math"

// Join-order search. The executor's join pipeline emits rows in a
// canonical order (probe-major: driver rows ascending, each multi-match
// expansion branching in build-row order), so the final base-row order
// is fully determined by (driver, relative order of row-expanding
// joins). The search therefore optimizes freely over tables whose
// joins provably match at most one build row (unique join keys — they
// only filter, never branch) while pinning the relative order of
// everything else to the greedy baseline's order. Under those
// constraints any order the search returns executes bit-identically to
// the baseline — the property the cost-vs-greedy differential test
// proves over all 99 templates (see DESIGN.md "Cost-based planning").

// dpMaxTables caps the dynamic-programming search: above this many
// joinable tables (2^n states) the planner keeps the greedy baseline
// order and prices it under the cost model. TPC-DS blocks join far
// fewer tables; the cap is a safety valve for ad-hoc SQL.
const dpMaxTables = 12

// SearchInput is the planner's view of one join problem.
type SearchInput struct {
	Graph Graph
	// Driver is the pinned driver table (the executor's fact-first
	// rule picks it; changing it would change output order).
	Driver int
	// Pinned tables may expand rows (no provably-unique join key) and
	// must keep this exact relative order — the greedy baseline's.
	Pinned []int
	// Free tables provably match at most one build row per probe and
	// may be placed anywhere a join edge connects them.
	Free []int
	// GreedyOrder is the baseline order (driver first, inner tables
	// only), the fallback when search is inapplicable.
	GreedyOrder []int
	// GreedyConnected is false when the baseline order contains a
	// disconnected (cartesian) placement; the search then returns the
	// baseline unchanged, because a cartesian step branches the output
	// by a table the constraint model treats as non-branching.
	GreedyConnected bool
}

// JoinPlan is the search's result: a full execution order (driver
// first) with its estimated cost and output cardinality.
type JoinPlan struct {
	Order   []int
	Cost    float64
	EstRows float64
	// Source records how the order was obtained: "dp" for a search
	// result, "greedy" for the baseline fallback.
	Source string
}

// Search finds the cheapest left-deep join order satisfying the
// order-safety constraints, falling back to the baseline order when
// the problem is too large, disconnected, or constraint-infeasible.
// The search is fully deterministic: states advance in mask order,
// extensions in item order, and only strict improvements replace a
// state.
func Search(in SearchInput) JoinPlan {
	n := len(in.Pinned) + len(in.Free)
	fallback := func() JoinPlan {
		cost, card := in.Graph.orderCost(in.Driver, in.GreedyOrder[1:])
		return JoinPlan{Order: in.GreedyOrder, Cost: cost, EstRows: card, Source: "greedy"}
	}
	if n == 0 || n > dpMaxTables || !in.GreedyConnected {
		return fallback()
	}

	// items: pinned first (their slice position is their required
	// relative rank), then free.
	items := make([]int, 0, n)
	items = append(items, in.Pinned...)
	items = append(items, in.Free...)
	numPinned := len(in.Pinned)

	// Adjacency bitmasks over item positions, plus driver adjacency.
	adj := make([]uint32, n)
	adjDriver := make([]bool, n)
	posOf := make(map[int]int, n)
	for i, t := range items {
		posOf[t] = i
	}
	for _, e := range in.Graph.Edges {
		pa, aok := posOf[e.A]
		pb, bok := posOf[e.B]
		switch {
		case aok && bok:
			adj[pa] |= 1 << uint(pb)
			adj[pb] |= 1 << uint(pa)
		case aok && e.B == in.Driver:
			adjDriver[pa] = true
		case bok && e.A == in.Driver:
			adjDriver[pb] = true
		}
	}

	// needMask[i] for a pinned item: the pinned items that must already
	// be joined before item i may be placed (all pinned ranks below i).
	needMask := make([]uint32, numPinned)
	for i := 1; i < numPinned; i++ {
		needMask[i] = needMask[i-1] | 1<<uint(i-1)
	}
	pinnedAll := uint32(0)
	if numPinned > 0 {
		pinnedAll = 1<<uint(numPinned) - 1
	}

	size := 1 << uint(n)
	cost := make([]float64, size)
	card := make([]float64, size)
	last := make([]int8, size)
	for m := range cost {
		cost[m] = math.Inf(1)
	}
	driverEst := in.Graph.Tables[in.Driver].Est
	cost[0] = driverEst * costMaterialize // driver scan materializes wide rows
	card[0] = driverEst

	inMask := func(mask uint32) func(int) bool {
		return func(t int) bool {
			if t == in.Driver {
				return true
			}
			if p, ok := posOf[t]; ok {
				return mask&(1<<uint(p)) != 0
			}
			return false
		}
	}
	for mask := 0; mask < size; mask++ {
		if math.IsInf(cost[mask], 1) {
			continue
		}
		m := uint32(mask)
		for i := 0; i < n; i++ {
			bit := uint32(1) << uint(i)
			if m&bit != 0 {
				continue
			}
			if !adjDriver[i] && adj[i]&m == 0 {
				continue // disconnected placement: would branch by row id
			}
			if i < numPinned && m&pinnedAll != needMask[i] {
				continue // would break the pinned relative order
			}
			t := items[i]
			est := in.Graph.Tables[t].Est
			out := in.Graph.joinCard(card[mask], inMask(m), t)
			next := mask | int(bit)
			c := cost[mask] + float64(in.Graph.Tables[t].Rows)*costScan +
				est*costBuild + card[mask]*costProbe + out*costMaterialize
			if c < cost[next] {
				cost[next] = c
				card[next] = out
				last[next] = int8(i)
			}
		}
	}
	full := size - 1
	if math.IsInf(cost[full], 1) {
		return fallback() // join graph not connected from the driver
	}
	order := make([]int, 0, n+1)
	for mask := full; mask != 0; {
		i := int(last[mask])
		order = append(order, items[i])
		mask &^= 1 << uint(i)
	}
	order = append(order, in.Driver)
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return JoinPlan{Order: order, Cost: cost[full], EstRows: card[full], Source: "dp"}
}
