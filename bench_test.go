// Benchmark harness: one benchmark per table and figure of "The Making
// of TPC-DS" (VLDB 2006). Each benchmark regenerates the corresponding
// artifact — schema statistics, cardinalities, distributions, the
// example queries, maintenance algorithms, execution order, stream
// scaling, the metric — and reports the headline numbers through
// b.ReportMetric so `go test -bench=. -benchmem` prints the paper's rows.
// EXPERIMENTS.md records paper-vs-measured for each one.
package tpcds_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tpcds/internal/datagen"
	"tpcds/internal/dist"
	"tpcds/internal/driver"
	"tpcds/internal/exec"
	"tpcds/internal/maintenance"
	"tpcds/internal/metric"
	"tpcds/internal/plan"
	"tpcds/internal/qgen"
	"tpcds/internal/queries"
	"tpcds/internal/rng"
	"tpcds/internal/scaling"
	"tpcds/internal/schema"
	"tpcds/internal/storage"
	"tpcds/internal/tpchlite"
)

// benchSF is the development scale factor of the benchmark database.
const benchSF = 0.002

var (
	benchOnce sync.Once
	benchEng  *exec.Engine
)

// engine lazily builds one shared database for all query benchmarks.
func engine() *exec.Engine {
	benchOnce.Do(func() {
		benchEng = exec.New(datagen.New(benchSF, 1).GenerateAll())
	})
	return benchEng
}

// ---------------------------------------------------------------------
// Table 1: schema statistics.
// ---------------------------------------------------------------------

func BenchmarkTable1SchemaStatistics(b *testing.B) {
	var s schema.Statistics
	for i := 0; i < b.N; i++ {
		s = schema.ComputeStatistics()
	}
	b.ReportMetric(float64(s.FactTables), "fact_tables")
	b.ReportMetric(float64(s.DimensionTables), "dim_tables")
	b.ReportMetric(float64(s.MinColumns), "min_cols")
	b.ReportMetric(float64(s.MaxColumns), "max_cols")
	b.ReportMetric(s.AvgColumns, "avg_cols")
	b.ReportMetric(float64(s.ForeignKeys), "foreign_keys")
	b.ReportMetric(s.AvgRowBytes, "avg_row_bytes")
}

// ---------------------------------------------------------------------
// Table 2: table cardinalities at the published scale factors.
// ---------------------------------------------------------------------

func BenchmarkTable2Cardinalities(b *testing.B) {
	tables := []string{"store_sales", "store_returns", "store", "customer", "item"}
	sfs := []float64{100, 1000, 10000, 100000}
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, t := range tables {
			for _, sf := range sfs {
				sink += scaling.Rows(t, sf)
			}
		}
	}
	_ = sink
	// Headline values (in millions where the paper uses M/B).
	b.ReportMetric(float64(scaling.Rows("store_sales", 100))/1e6, "ss_100GB_Mrows")
	b.ReportMetric(float64(scaling.Rows("store_sales", 100000))/1e9, "ss_100TB_Brows")
	b.ReportMetric(float64(scaling.Rows("store", 100)), "store_100GB")
	b.ReportMetric(float64(scaling.Rows("store", 100000)), "store_100TB")
	b.ReportMetric(float64(scaling.Rows("customer", 100))/1e6, "cust_100GB_Mrows")
	b.ReportMetric(float64(scaling.Rows("item", 100000))/1e3, "item_100TB_Krows")
}

// ---------------------------------------------------------------------
// Figure 1: the store sales snowflake — exercised as the circular
// customer/address join the paper highlights in §2.2.
// ---------------------------------------------------------------------

func BenchmarkFigure1SnowflakeJoin(b *testing.B) {
	e := engine()
	q := `SELECT cur.ca_state, COUNT(*) c
	      FROM store_sales, customer, customer_address cur, customer_address sale
	      WHERE ss_customer_sk = c_customer_sk
	        AND c_current_addr_sk = cur.ca_address_sk
	        AND ss_addr_sk = sale.ca_address_sk
	      GROUP BY cur.ca_state ORDER BY c DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Figure 2: the zoned store-sales date distribution vs the census
// calibration series.
// ---------------------------------------------------------------------

func BenchmarkFigure2SalesDistribution(b *testing.B) {
	s := rng.NewStream(2)
	counts := make([]int, 13)
	n := 0
	for i := 0; i < b.N; i++ {
		counts[dist.PickSalesMonth(s)]++
		n++
	}
	if n >= 1200 {
		total := float64(n)
		b.ReportMetric(float64(counts[12])/total*100, "dec_pct")
		b.ReportMetric(float64(counts[11])/total*100, "nov_pct")
		b.ReportMetric(float64(counts[6])/total*100, "jun_pct")
	}
	b.ReportMetric(dist.MonthWeight(12)*100, "dec_weight_pct")
	b.ReportMetric(dist.MonthWeight(6)*100, "jun_weight_pct")
}

// ---------------------------------------------------------------------
// Figure 3: the synthetic Normal(200, 50) day-of-year distribution.
// ---------------------------------------------------------------------

func BenchmarkFigure3SyntheticDistribution(b *testing.B) {
	s := rng.NewStream(3)
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += float64(dist.SyntheticSalesDay(s))
	}
	if b.N > 1000 {
		b.ReportMetric(sum/float64(b.N), "mean_day")
	}
}

// ---------------------------------------------------------------------
// Figure 4: substitution comparability — the qualifying-row counts of
// the simple date-predicate query under zone-bound substitutions.
// ---------------------------------------------------------------------

func BenchmarkFigure4SubstitutionComparability(b *testing.B) {
	e := engine()
	s := rng.NewStream(4)
	var minRows, maxRows int
	executions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		month := dist.PickMonthInZone(s, dist.ZoneLow)
		q := fmt.Sprintf(`SELECT d_date, SUM(ss_ext_sales_price)
			FROM store_sales, date_dim
			WHERE ss_sold_date_sk = d_date_sk AND d_moy = %d
			GROUP BY d_date`, month)
		res, err := e.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if executions == 0 || len(res.Rows) < minRows {
			minRows = len(res.Rows)
		}
		if len(res.Rows) > maxRows {
			maxRows = len(res.Rows)
		}
		executions++
	}
	if executions > 3 && minRows > 0 {
		b.ReportMetric(float64(maxRows)/float64(minRows), "rowcount_spread")
	}
}

// ---------------------------------------------------------------------
// Figure 5: item hierarchy generation (single inheritance).
// ---------------------------------------------------------------------

func BenchmarkFigure5ItemHierarchy(b *testing.B) {
	g := datagen.New(benchSF, 1)
	var rows int
	for i := 0; i < b.N; i++ {
		t := g.GenerateDimension("item")
		rows = t.NumRows()
	}
	b.ReportMetric(float64(rows), "item_rows")
	b.ReportMetric(float64(len(dist.Categories)), "categories")
}

// ---------------------------------------------------------------------
// Figures 6 and 7: the paper's two example queries.
// ---------------------------------------------------------------------

func benchQuery(b *testing.B, id int) {
	e := engine()
	tpl, err := queries.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, i, tpl.ID))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Query(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery52AdHoc(b *testing.B)     { benchQuery(b, 52) }
func BenchmarkQuery20Reporting(b *testing.B) { benchQuery(b, 20) }

// BenchmarkAllQueriesSequential runs each of the 99 once per iteration —
// the single-stream cost of one full query run.
func BenchmarkAllQueriesSequential(b *testing.B) {
	e := engine()
	tpls := queries.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tpl := range tpls {
			text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, i, tpl.ID))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Query(text); err != nil {
				b.Fatalf("query %d: %v", tpl.ID, err)
			}
		}
	}
	b.ReportMetric(99, "queries/op")
}

// ---------------------------------------------------------------------
// Figures 8, 9, 10: the data maintenance algorithms.
// ---------------------------------------------------------------------

func BenchmarkFigure8NonHistoryUpdate(b *testing.B) {
	eng := exec.New(datagen.New(benchSF, 8).GenerateAll())
	db := eng.DB()
	cust := db.Table("customer")
	bkCol := cust.Def.ColumnIndex("c_customer_id")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk := cust.Get(i%cust.NumRows(), bkCol).S
		rs := &maintenance.RefreshSet{
			Sales: map[string][]maintenance.StagedSale{}, Returns: map[string][]maintenance.StagedReturn{},
			DeleteRange:  map[string][2]int64{},
			UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 1, 1)),
			DimUpdates: []maintenance.DimUpdate{{
				Table: "customer", BusinessKey: bk,
				Set: map[string]storage.Value{"c_email_address": storage.Str("bench@example.com")},
			}},
		}
		if _, err := maintenance.Run(eng, rs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9SCDUpdate(b *testing.B) {
	eng := exec.New(datagen.New(benchSF, 9).GenerateAll())
	db := eng.DB()
	item := db.Table("item")
	bkCol := item.Def.ColumnIndex("i_item_id")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk := item.Get(i%item.NumRows(), bkCol).S
		rs := &maintenance.RefreshSet{
			Sales: map[string][]maintenance.StagedSale{}, Returns: map[string][]maintenance.StagedReturn{},
			DeleteRange:  map[string][2]int64{},
			UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 1, 1) + int64(i)),
			DimUpdates: []maintenance.DimUpdate{{
				Table: "item", BusinessKey: bk,
				Set: map[string]storage.Value{"i_current_price": storage.Float(float64(i%100) + 0.99)},
			}},
		}
		if _, err := maintenance.Run(eng, rs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10FactInsert(b *testing.B) {
	eng := exec.New(datagen.New(benchSF, 10).GenerateAll())
	db := eng.DB()
	item := db.Table("item")
	cust := db.Table("customer")
	itemBK := item.Def.ColumnIndex("i_item_id")
	custBK := cust.Def.ColumnIndex("c_customer_id")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := &maintenance.RefreshSet{
			Sales: map[string][]maintenance.StagedSale{
				"store": {{
					SoldDateSK: storage.DateSK(storage.DaysFromYMD(2001, 6, 15)),
					SoldTimeSK: 1,
					ItemID:     item.Get(i%item.NumRows(), itemBK).S,
					CustomerID: cust.Get(i%cust.NumRows(), custBK).S,
					Order:      int64(10_000_000 + i), Quantity: 5, SalesPrice: 10, Wholesale: 6,
				}},
			},
			Returns: map[string][]maintenance.StagedReturn{}, DeleteRange: map[string][2]int64{},
			UpdateDateSK: storage.DateSK(storage.DaysFromYMD(2003, 1, 1)),
		}
		if _, err := maintenance.Run(eng, rs); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Figure 11: the full benchmark execution order at tiny scale.
// ---------------------------------------------------------------------

func BenchmarkFigure11FullBenchmark(b *testing.B) {
	var lastQphDS float64
	for i := 0; i < b.N; i++ {
		res, err := driver.Run(driver.Config{
			SF: 0.0005, Streams: 1, Seed: uint64(i + 1),
			QueryIDs: []int{1, 2, 16, 20, 21, 27, 52, 66},
		})
		if err != nil {
			b.Fatal(err)
		}
		lastQphDS = res.Report.QphDS
	}
	b.ReportMetric(lastQphDS, "qphds")
}

// ---------------------------------------------------------------------
// Figure 12: stream scaling — throughput as concurrent streams grow.
// ---------------------------------------------------------------------

func BenchmarkFigure12StreamScaling(b *testing.B) {
	for _, streams := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("streams-%d", streams), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				res, err := driver.Run(driver.Config{
					SF: 0.0005, Streams: streams, Seed: 1,
					QueryIDs: []int{1, 9, 16, 32, 52},
				})
				if err != nil {
					b.Fatal(err)
				}
				q = res.Report.QphDS
			}
			b.ReportMetric(q, "qphds")
			b.ReportMetric(float64(metric.TotalQueries(streams)), "queries")
		})
	}
}

// ---------------------------------------------------------------------
// §5.3: the metric itself.
// ---------------------------------------------------------------------

func BenchmarkMetricQphDS(b *testing.B) {
	tm := metric.Timings{
		Load: time.Hour, QR1: 3 * time.Hour, DM: 30 * time.Minute, QR2: 3 * time.Hour,
	}
	var q float64
	for i := 0; i < b.N; i++ {
		q = metric.QphDS(1000, 7, tm)
	}
	b.ReportMetric(q, "qphds_sf1000")
	b.ReportMetric(float64(metric.TotalQueries(7)), "queries")
}

// ---------------------------------------------------------------------
// Ablation: star transformation vs hash joins across dimension
// selectivity — locating the crossover of §2.1.
// ---------------------------------------------------------------------

func BenchmarkAblationStarVsHashJoin(b *testing.B) {
	cases := []struct {
		name string
		// manager range width controls item-dimension selectivity.
		managers int
		months   string
	}{
		{"selective", 5, "AND d_moy = 12 AND d_year = 2000"},
		{"medium", 30, "AND d_year = 2000"},
		{"broad", 100, ""},
	}
	for _, c := range cases {
		q := fmt.Sprintf(`SELECT i_brand, SUM(ss_ext_sales_price) r
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
			  AND i_manager_id BETWEEN 1 AND %d %s
			GROUP BY i_brand ORDER BY r DESC LIMIT 10`, c.managers, c.months)
		for _, mode := range []plan.Mode{plan.ForceHashJoin, plan.ForceStar} {
			b.Run(fmt.Sprintf("%s/%s", c.name, mode), func(b *testing.B) {
				e := engine()
				e.SetMode(mode)
				defer e.SetMode(plan.Auto)
				// Warm indexes outside the timed region.
				if _, err := e.Query(q); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Ablation: serial vs morsel-parallel execution — the same multi-join
// and aggregation queries with the morsel executor off (1 worker) and
// on (all cores). Results are bit-identical in both configurations; the
// ratio of the two timings is the intra-query speedup.
// ---------------------------------------------------------------------

func BenchmarkParallelVsSerial(b *testing.B) {
	cases := []struct {
		name string
		q    string
	}{
		{"snowflake-join", `SELECT cur.ca_state, COUNT(*) c
			FROM store_sales, customer, customer_address cur, customer_address sale
			WHERE ss_customer_sk = c_customer_sk
			  AND c_current_addr_sk = cur.ca_address_sk
			  AND ss_addr_sk = sale.ca_address_sk
			GROUP BY cur.ca_state ORDER BY c DESC LIMIT 10`},
		{"multi-join-agg", `SELECT i_brand, SUM(ss_ext_sales_price) r
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
			  AND d_year = 2000
			GROUP BY i_brand ORDER BY r DESC LIMIT 10`},
		{"wide-agg", `SELECT ss_store_sk, COUNT(*) c, SUM(ss_net_paid) s, AVG(ss_quantity) a
			FROM store_sales GROUP BY ss_store_sk ORDER BY s DESC`},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 0} { // 1 = serial, 0 = all cores
			label := "serial"
			if workers != 1 {
				label = "parallel"
			}
			b.Run(fmt.Sprintf("%s/%s", c.name, label), func(b *testing.B) {
				e := engine()
				e.SetParallelism(workers)
				// Development-scale tables are far below the production
				// 64K-row morsel, so shrink morsels to get real fan-out.
				e.SetMorselSize(4096)
				defer func() {
					e.SetParallelism(0)
					e.SetMorselSize(0)
				}()
				if _, err := e.Query(c.q); err != nil { // warm indexes
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(c.q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(plan.Parallelism(workers)), "workers")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Ablation: comparability zones vs naive synthetic substitution —
// run-to-run variance of qualifying row counts (§3.2).
// ---------------------------------------------------------------------

func BenchmarkAblationZonesVsNaive(b *testing.B) {
	e := engine()
	spread := func(months []int) float64 {
		minC, maxC := -1, -1
		for _, m := range months {
			res, err := e.Query(fmt.Sprintf(
				`SELECT COUNT(*) c FROM store_sales, date_dim
				 WHERE ss_sold_date_sk = d_date_sk AND d_moy = %d`, m))
			if err != nil {
				b.Fatal(err)
			}
			c := int(res.Rows[0][0].AsInt())
			if minC < 0 || c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if minC <= 0 {
			return 0
		}
		return float64(maxC) / float64(minC)
	}
	var zoned, naive float64
	for i := 0; i < b.N; i++ {
		zoned = spread([]int{1, 3, 5, 7}) // all zone 1: comparable
		naive = spread([]int{3, 9, 12})   // across zones: incomparable
	}
	b.ReportMetric(zoned, "zoned_spread")
	b.ReportMetric(naive, "naive_spread")
}

// ---------------------------------------------------------------------
// Baseline: the TPC-H-style workload and its geometric-mean power
// metric (§1's comparison).
// ---------------------------------------------------------------------

func BenchmarkBaselineTPCHLite(b *testing.B) {
	db := tpchlite.Generate(0.002, 1)
	e := exec.New(db)
	qs := tpchlite.Queries()
	var power float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		times := make([]time.Duration, 0, len(qs))
		for _, q := range qs {
			start := time.Now()
			if _, err := e.Query(q); err != nil {
				b.Fatal(err)
			}
			times = append(times, time.Since(start))
		}
		power = tpchlite.PowerMetric(0.002, times)
	}
	b.ReportMetric(power, "power_metric")
	b.ReportMetric(float64(len(qs)), "queries")
}

// ---------------------------------------------------------------------
// Load test components: generation and maintenance throughput.
// ---------------------------------------------------------------------

func BenchmarkLoadTestGeneration(b *testing.B) {
	var rows int64
	for i := 0; i < b.N; i++ {
		db := datagen.New(0.0005, uint64(i+1)).GenerateAll()
		rows = db.TotalRows()
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkDataMaintenanceRun(b *testing.B) {
	eng := exec.New(datagen.New(benchSF, 12).GenerateAll())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := maintenance.GenerateRefresh(eng.DB(), 12, i+1)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := maintenance.Run(eng, rs)
		if err != nil {
			b.Fatal(err)
		}
		if len(stats.Ops) != 12 {
			b.Fatalf("expected 12 operations, got %d", len(stats.Ops))
		}
	}
}

// ---------------------------------------------------------------------
// Ablation: statistics-based vs heuristic selectivity estimation. The
// load test gathers statistics (§5.2) because skewed TPC-DS data makes
// fixed heuristics misjudge dimension filters; the metric here is the
// relative estimation error of the filtered date_dim cardinality.
// ---------------------------------------------------------------------

func BenchmarkAblationStatsVsHeuristics(b *testing.B) {
	e := engine()
	q := `SELECT COUNT(*) c FROM store_sales, date_dim
	      WHERE ss_sold_date_sk = d_date_sk AND d_year = 2000 AND d_moy = 12`
	trueRows := 31.0 // December 2000 has 31 qualifying date_dim rows
	estimate := func(useStats bool) float64 {
		e.SetUseStatistics(useStats)
		defer e.SetUseStatistics(true)
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
		for _, tt := range e.LastTrace().Tables {
			if tt.Binding == "date_dim" {
				return tt.Estimate
			}
		}
		return 0
	}
	var withStats, withHeuristics float64
	for i := 0; i < b.N; i++ {
		withStats = estimate(true)
		withHeuristics = estimate(false)
	}
	relErr := func(est float64) float64 {
		d := est - trueRows
		if d < 0 {
			d = -d
		}
		return d / trueRows
	}
	b.ReportMetric(relErr(withStats), "stats_rel_err")
	b.ReportMetric(relErr(withHeuristics), "heuristic_rel_err")
}

// ---------------------------------------------------------------------
// Ablation: greedy heuristic vs cost-based join planning, head-to-head
// per template ("when greedy beats optimal" is an empirical question).
// Both planners return bit-identical results for every template
// (TestCostEqualsGreedyAllTemplates); this measures whether the
// searched orders, the plan cache, decorrelation and CSE actually buy
// latency. Each template is instantiated once outside the timed region
// so the loop measures planning + execution, with the plan cache in
// steady state from the second iteration — the 99-template ×
// substitution workload the cache is built for.
// ---------------------------------------------------------------------

func BenchmarkAblationGreedyVsCost(b *testing.B) {
	for _, pk := range []plan.PlannerKind{plan.Greedy, plan.CostBased} {
		b.Run(pk.String(), func(b *testing.B) {
			e := engine()
			e.SetPlanner(pk)
			defer e.SetPlanner(plan.CostBased)
			for _, tpl := range queries.All() {
				text, err := qgen.Instantiate(tpl, qgen.StreamSeed(1, 0, tpl.ID))
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("q%02d", tpl.ID), func(b *testing.B) {
					// Warm indexes, statistics, and the plan cache.
					if _, err := e.Query(text); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := e.Query(text); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}
